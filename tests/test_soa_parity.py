"""Randomized parity of the struct-of-arrays specialized engine.

``System.run`` dispatches to ``repro.sim.engine`` — per-scheme
specialized inner loops over precompiled trace arrays — whenever the
defense family has one and no sanitizer is attached.  The property that
keeps that fast path honest mirrors the quiet-wakeup suite: for *any*
generated workload and *any* scheme, with or without chaos fault
injection, the engine must be bit-indistinguishable from the
cycle-by-cycle ``run_reference`` oracle — equal cycle counts, equal
per-core pipeline *and* pinning statistics.

Two more properties pin down the seams:

* checkpoint format 3 (array snapshots) taken mid-run under the engine
  must resume to the exact same end state as an uninterrupted run;
* ineligible configurations (sanitizer attached, defense outside the
  specialized families) must fall back to the generic guarded loop,
  and the ``System._engine is False`` memo must stop re-probing.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.params import (ChaosConfig, DefenseKind, SystemConfig,
                                 ThreatModel)
from repro.sim.checkpoint import restore_system, snapshot_system
from repro.sim.engine import SPECIALIZED_DEFENSES, SpecializedEngine
from repro.sim.runner import scheme_grid
from repro.sim.system import System
from repro.workloads import WorkloadProfile, build_workload

BASE = SystemConfig()

#: Label -> config for every scheme the paper measures, plus unsafe.
SCHEMES = dict(
    [("unsafe", BASE)]
    + [(label, BASE.with_defense(defense, threat, pinning))
       for label, (defense, threat, pinning)
       in sorted(scheme_grid().items())])

#: Every fault class on: jitter+reorder, NACKs, evictions, WB spikes.
CHAOS = ChaosConfig(seed=3, wb_spike_interval=300)

PROFILES = st.builds(
    WorkloadProfile,
    name=st.just("soa"),
    load_frac=st.floats(min_value=0.1, max_value=0.35),
    store_frac=st.floats(min_value=0.02, max_value=0.15),
    branch_frac=st.floats(min_value=0.02, max_value=0.25),
    fp_frac=st.floats(min_value=0.0, max_value=0.9),
    mispredict_rate=st.floats(min_value=0.0, max_value=0.15),
    warm_frac=st.floats(min_value=0.0, max_value=0.3),
    stream_frac=st.floats(min_value=0.0, max_value=0.2),
    dependent_load_frac=st.floats(min_value=0.0, max_value=0.5),
    hot_lines=st.integers(min_value=16, max_value=512),
    warm_lines=st.integers(min_value=512, max_value=4096),
)

SLOW = settings(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _fresh(config, workload):
    system = System(config, workload)
    system.mem.warm(workload)
    return system


def _assert_indistinguishable(opt, ref, label):
    assert opt.cycles == ref.cycles, label
    for oc, rc in zip(opt.cores, ref.cores):
        assert oc.stats.as_dict() == rc.stats.as_dict(), \
            f"{label}: core {oc.core_id} pipeline stats"
        assert oc.controller.stats.as_dict() \
            == rc.controller.stats.as_dict(), \
            f"{label}: core {oc.core_id} pinning stats"
        assert oc.retired == rc.retired, label


class TestEngineMatchesReference:
    @SLOW
    @given(profile=PROFILES,
           seed=st.integers(min_value=1, max_value=50),
           label=st.sampled_from(sorted(SCHEMES)),
           chaos=st.booleans())
    def test_engine_matches_reference(self, profile, seed, label, chaos):
        """For any workload, scheme, and fault schedule, the engine run
        must match ``run_reference`` on cycles and every per-core
        statistic."""
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=250)
        config = SCHEMES[label]
        if chaos:
            config = dataclasses.replace(config, chaos=CHAOS)
        opt = _fresh(config, workload)
        opt.run()
        assert isinstance(opt._engine, SpecializedEngine), \
            f"{label}: expected the specialized engine to be eligible"
        ref = _fresh(config, workload)
        ref.run_reference()
        _assert_indistinguishable(opt, ref,
                                  f"{label} chaos={chaos} seed={seed}")


class TestCheckpointMidRun:
    @SLOW
    @given(profile=PROFILES,
           seed=st.integers(min_value=1, max_value=50),
           label=st.sampled_from(sorted(SCHEMES)),
           fraction=st.floats(min_value=0.1, max_value=0.9))
    def test_snapshot_resume_bit_identity(self, profile, seed, label,
                                          fraction):
        """A format-3 snapshot taken mid-run under the engine, restored
        into a fresh process-local ``System``, must finish with exactly
        the state an uninterrupted run reaches."""
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=250)
        config = SCHEMES[label]
        straight = _fresh(config, workload)
        total = straight.run()
        paused = _fresh(config, workload)
        paused.run(stop_cycle=max(1, int(total * fraction)))
        resumed = restore_system(snapshot_system(paused))
        resumed.run()
        _assert_indistinguishable(resumed, straight,
                                  f"{label} seed={seed} f={fraction:.2f}")


class TestEligibilityFallback:
    def _workload(self):
        profile = WorkloadProfile(name="soa-fallback", load_frac=0.25,
                                  store_frac=0.1)
        return build_workload(profile, seed=7,
                              instructions_per_thread=150)

    def test_sanitized_run_stays_on_generic_loop(self):
        """The sanitizer shadows ``Core.tick`` through the instance
        dict, which the compiled closures would bypass — sanitized runs
        must never build an engine."""
        config = dataclasses.replace(SCHEMES["fence-comp"], sanitize=True)
        system = _fresh(config, self._workload())
        system.run()
        assert system._engine is None

    def test_unspecialized_defense_falls_back_and_memoizes(self):
        """INVISI has no specialized loop: ``run`` must fall back to the
        generic loop, cache the miss as ``_engine is False``, and still
        match the reference oracle."""
        assert DefenseKind.INVISI not in SPECIALIZED_DEFENSES
        config = BASE.with_defense(DefenseKind.INVISI, ThreatModel.MCV)
        workload = self._workload()
        opt = _fresh(config, workload)
        opt.run()
        assert opt._engine is False
        ref = _fresh(config, workload)
        ref.run_reference()
        _assert_indistinguishable(opt, ref, "invisi fallback")

    def test_restored_system_rebuilds_engine_lazily(self):
        """``__getstate__`` drops the compiled engine; the next ``run``
        after a restore must rebuild it rather than crash or silently
        tick the generic loop."""
        config = SCHEMES["dom-ep"]
        workload = self._workload()
        paused = _fresh(config, workload)
        paused.run(stop_cycle=50)
        resumed = restore_system(snapshot_system(paused))
        assert resumed._engine is None
        resumed.run()
        assert isinstance(resumed._engine, SpecializedEngine)
