"""Analysis utilities: breakdowns, tables, and the hardware cost model."""

import pytest

from repro.analysis.area import cst_hardware_table, estimate_sram
from repro.analysis.breakdown import (geomean_stack, stacked_overheads,
                                      vp_condition_cycles)
from repro.analysis.tables import (format_breakdown_table,
                                   format_normalized_cpi_table,
                                   format_stat_table, geomean_overhead_pct)
from repro.common.params import DefenseKind, SystemConfig
from repro.sim.runner import ExperimentCache
from repro.workloads import spec17_workload


class TestStackedOverheads:
    def test_contributions_stack_to_total(self):
        cycles = {"unsafe": 1000, "ctrl": 1200, "alias": 1230,
                  "exception": 1250, "mcv": 2000}
        stack = stacked_overheads(cycles)
        assert stack["ctrl"] == pytest.approx(20.0)
        assert stack["alias"] == pytest.approx(3.0)
        assert stack["exception"] == pytest.approx(2.0)
        assert stack["mcv"] == pytest.approx(75.0)
        assert sum(stack.values()) == pytest.approx(100.0)

    def test_negative_noise_clamped(self):
        cycles = {"unsafe": 1000, "ctrl": 1200, "alias": 1190,
                  "exception": 1210, "mcv": 1500}
        stack = stacked_overheads(cycles)
        assert stack["alias"] == 0.0
        assert all(v >= 0 for v in stack.values())

    def test_rejects_zero_unsafe(self):
        with pytest.raises(ValueError):
            stacked_overheads({"unsafe": 0, "ctrl": 1, "alias": 1,
                               "exception": 1, "mcv": 1})

    def test_geomean_stack_of_identical_apps(self):
        app = {"unsafe": 1000, "ctrl": 1100, "alias": 1150,
               "exception": 1160, "mcv": 1600}
        stack = geomean_stack([app, dict(app)])
        assert stack["ctrl"] == pytest.approx(10.0)
        assert stack["mcv"] == pytest.approx(44.0)

    def test_geomean_stack_requires_apps(self):
        with pytest.raises(ValueError):
            geomean_stack([])


class TestVPConditionCycles:
    def test_levels_and_unsafe_present_and_ordered(self):
        cache = ExperimentCache()
        workload = spec17_workload("gcc_r", instructions=600)
        cycles = vp_condition_cycles(
            SystemConfig(), DefenseKind.FENCE,
            run=lambda cfg: cache.run(cfg, workload))
        for key in ("unsafe", "ctrl", "alias", "exception", "mcv"):
            assert key in cycles
        assert cycles["unsafe"] <= cycles["ctrl"] <= cycles["mcv"]
        # the paper's central observation: MCV dominates the stall time
        stack = stacked_overheads(cycles)
        assert stack["mcv"] >= stack["alias"]
        assert stack["mcv"] >= stack["exception"]


class TestTables:
    def test_cpi_table_contains_apps_and_geomean(self):
        data = {"a": {"comp": 2.0, "ep": 1.5}, "b": {"comp": 1.5,
                                                     "ep": 1.25}}
        text = format_normalized_cpi_table("Fence", ["a", "b"],
                                           ["comp", "ep"], data)
        assert "Fence" in text and "Geo.Mean" in text
        assert "2.000" in text and "1.732" in text   # geomean(2, 1.5)

    def test_breakdown_table_totals(self):
        stacks = {"Fence SPEC17": {"ctrl": 20.0, "alias": 3.0,
                                   "exception": 2.0, "mcv": 75.0}}
        extra = {"Fence SPEC17": {"LP": 66.4, "EP": 51.3}}
        text = format_breakdown_table("Figure 9", stacks, extra)
        assert "100.0%" in text
        assert "66.4%" in text and "51.3%" in text

    def test_stat_table_renders_missing_as_dash(self):
        text = format_stat_table("T", {"r1": {"a": 1.0}, "r2": {"b": 2.0}})
        assert "-" in text

    def test_geomean_overhead_pct(self):
        assert geomean_overhead_pct({"a": 2.0, "b": 2.0}) \
            == pytest.approx(100.0)


class TestAreaModel:
    def test_table1_storage_bytes_exact(self):
        table = cst_hardware_table()
        assert table["l1_cst"]["bytes"] == 444
        assert table["dir_cst"]["bytes"] == 370

    def test_table1_magnitudes(self):
        """§9.2.4: 'these numbers are very small' — and close to CACTI's."""
        table = cst_hardware_table()
        assert table["l1_cst"]["area_mm2"] == pytest.approx(0.0008, abs=4e-4)
        assert table["dir_cst"]["area_mm2"] == pytest.approx(0.0005,
                                                             abs=3e-4)
        assert table["l1_cst"]["read_energy_pj"] == pytest.approx(0.6,
                                                                  rel=0.1)
        assert table["dir_cst"]["read_energy_pj"] == pytest.approx(0.4,
                                                                   rel=0.1)
        assert table["l1_cst"]["leakage_mw"] == pytest.approx(0.17, rel=0.2)
        assert table["dir_cst"]["leakage_mw"] == pytest.approx(0.17,
                                                               rel=0.2)

    def test_estimate_scales_with_bits(self):
        small = estimate_sram(1000, 32)
        large = estimate_sram(10000, 32)
        assert large.area_mm2 > small.area_mm2
        assert large.leakage_mw > small.leakage_mw
        assert large.read_energy_pj > small.read_energy_pj

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            estimate_sram(0, 8)
