"""STT taint tracking and Visibility-Point condition evaluation."""

from repro.common.params import PinningMode, ThreatModel
from repro.core.rob import ReorderBuffer, ROBEntry
from repro.isa.uops import MicroOp, OpClass
from repro.security.taint import TaintTracker
from repro.security.threat import (VPState, conditions_before_mcv,
                                   first_blocking_condition, vp_reached)


def entry_for(uop):
    return ROBEntry(uop, pending_deps=0, dispatch_cycle=0)


def dispatch(rob, tracker, uop):
    entry = entry_for(uop)
    rob.push(entry)
    tracker.on_dispatch(uop)
    return entry


class TestTaintTracker:
    def setup_method(self):
        self.rob = ReorderBuffer(capacity=32)
        self.tracker = TaintTracker(self.rob)

    def test_load_output_rooted_at_itself(self):
        dispatch(self.rob, self.tracker, MicroOp(0, OpClass.LOAD, addr=0x40))
        assert self.tracker.output_roots(0) == frozenset({0})

    def test_alu_unions_operand_roots(self):
        dispatch(self.rob, self.tracker, MicroOp(0, OpClass.LOAD, addr=0x40))
        dispatch(self.rob, self.tracker,
                 MicroOp(1, OpClass.LOAD, addr=0x80))
        dispatch(self.rob, self.tracker,
                 MicroOp(2, OpClass.INT_ALU, deps=(0, 1)))
        assert self.tracker.output_roots(2) == frozenset({0, 1})

    def test_load_with_tainted_address_is_blocked(self):
        dispatch(self.rob, self.tracker, MicroOp(0, OpClass.LOAD, addr=0x40))
        consumer = dispatch(self.rob, self.tracker,
                            MicroOp(1, OpClass.LOAD, deps=(0,), addr=0x80))
        assert self.tracker.addr_tainted(consumer)

    def test_untainted_when_producer_reaches_vp(self):
        producer = dispatch(self.rob, self.tracker,
                            MicroOp(0, OpClass.LOAD, addr=0x40))
        consumer = dispatch(self.rob, self.tracker,
                            MicroOp(1, OpClass.LOAD, deps=(0,), addr=0x80))
        producer.vp_cycle = 10
        assert not self.tracker.addr_tainted(consumer)

    def test_untainted_when_producer_retired(self):
        producer_uop = MicroOp(0, OpClass.LOAD, addr=0x40)
        producer = dispatch(self.rob, self.tracker, producer_uop)
        consumer = dispatch(self.rob, self.tracker,
                            MicroOp(1, OpClass.LOAD, deps=(0,), addr=0x80))
        assert self.tracker.addr_tainted(consumer)
        assert self.rob.pop_head() is producer    # retire the producer
        assert not self.tracker.addr_tainted(consumer)

    def test_taint_propagates_through_alu_chain(self):
        dispatch(self.rob, self.tracker, MicroOp(0, OpClass.LOAD, addr=0x40))
        dispatch(self.rob, self.tracker, MicroOp(1, OpClass.INT_ALU,
                                                 deps=(0,)))
        dispatch(self.rob, self.tracker, MicroOp(2, OpClass.INT_ALU,
                                                 deps=(1,)))
        consumer = dispatch(self.rob, self.tracker,
                            MicroOp(3, OpClass.LOAD, deps=(2,), addr=0xC0))
        assert self.tracker.addr_tainted(consumer)

    def test_load_with_untainted_operands_free(self):
        dispatch(self.rob, self.tracker, MicroOp(0, OpClass.INT_ALU))
        consumer = dispatch(self.rob, self.tracker,
                            MicroOp(1, OpClass.LOAD, deps=(0,), addr=0x80))
        assert not self.tracker.addr_tainted(consumer)

    def test_post_vp_roots_pruned_at_dispatch(self):
        producer = dispatch(self.rob, self.tracker,
                            MicroOp(0, OpClass.LOAD, addr=0x40))
        producer.vp_cycle = 5
        dispatch(self.rob, self.tracker, MicroOp(1, OpClass.INT_ALU,
                                                 deps=(0,)))
        assert self.tracker.output_roots(1) == frozenset()


class TestVPConditions:
    def setup_method(self):
        self.rob = ReorderBuffer(capacity=32)
        self.vp = VPState()

    def _load(self, index, addr_ready=True):
        entry = entry_for(MicroOp(index, OpClass.LOAD, addr=0x40))
        entry.addr_ready = addr_ready
        self.rob.push(entry)
        self.vp.unretired_loads.add(index)
        return entry

    def test_own_address_required_at_every_level(self):
        load = self._load(5, addr_ready=False)
        assert not conditions_before_mcv(load, ThreatModel.CTRL.level,
                                         self.vp)

    def test_ctrl_blocked_by_older_unresolved_branch(self):
        load = self._load(5)
        self.vp.unresolved_branches.add(3)
        assert not vp_reached(load, ThreatModel.CTRL, PinningMode.NONE,
                              self.vp, self.rob)
        self.vp.unresolved_branches.discard(3)
        assert vp_reached(load, ThreatModel.CTRL, PinningMode.NONE,
                          self.vp, self.rob)

    def test_younger_branch_is_irrelevant(self):
        load = self._load(5)
        self.vp.unresolved_branches.add(9)
        assert vp_reached(load, ThreatModel.CTRL, PinningMode.NONE,
                          self.vp, self.rob)

    def test_alias_level_adds_store_address_window(self):
        load = self._load(5)
        self.vp.unknown_addr_stores.add(2)
        assert vp_reached(load, ThreatModel.CTRL, PinningMode.NONE,
                          self.vp, self.rob)
        assert not vp_reached(load, ThreatModel.ALIAS, PinningMode.NONE,
                              self.vp, self.rob)

    def test_except_level_adds_memop_translation_window(self):
        load = self._load(5)
        self.vp.unknown_addr_memops.add(1)
        assert vp_reached(load, ThreatModel.ALIAS, PinningMode.NONE,
                          self.vp, self.rob)
        assert not vp_reached(load, ThreatModel.EXCEPT, PinningMode.NONE,
                              self.vp, self.rob)

    def test_mcv_level_requires_oldest_load_without_pinning(self):
        older = self._load(3)
        load = self._load(5)
        assert not vp_reached(load, ThreatModel.MCV, PinningMode.NONE,
                              self.vp, self.rob)
        assert vp_reached(older, ThreatModel.MCV, PinningMode.NONE,
                          self.vp, self.rob)

    def test_mcv_level_with_pinning_reads_mcv_safe(self):
        self._load(3)
        load = self._load(5)
        assert not vp_reached(load, ThreatModel.MCV, PinningMode.EARLY,
                              self.vp, self.rob)
        load.mcv_safe = True
        assert vp_reached(load, ThreatModel.MCV, PinningMode.EARLY,
                          self.vp, self.rob)

    def test_conservative_tso_requires_rob_head(self):
        load = self._load(3)
        blocker = entry_for(MicroOp(4, OpClass.INT_ALU))
        self.rob.push(blocker)
        assert vp_reached(load, ThreatModel.MCV, PinningMode.NONE,
                          self.vp, self.rob, aggressive_tso=False)
        # a load behind another instruction is not at the head
        younger = self._load(6)
        self.vp.unretired_loads.discard(3)
        self.rob.pop_head()
        assert not vp_reached(younger, ThreatModel.MCV, PinningMode.NONE,
                              self.vp, self.rob, aggressive_tso=False)

    def test_first_blocking_condition_diagnoses(self):
        load = self._load(5, addr_ready=False)
        assert first_blocking_condition(load, self.vp) == "addr"
        load.addr_ready = True
        self.vp.unresolved_branches.add(1)
        assert first_blocking_condition(load, self.vp) == "ctrl"
        self.vp.unresolved_branches.discard(1)
        self.vp.unknown_addr_stores.add(2)
        assert first_blocking_condition(load, self.vp) == "alias"
        self.vp.unknown_addr_stores.discard(2)
        self.vp.unknown_addr_memops.add(2)
        assert first_blocking_condition(load, self.vp) == "exception"
        self.vp.unknown_addr_memops.discard(2)
        self._load(3)
        assert first_blocking_condition(load, self.vp) == "mcv"
        self.vp.unretired_loads.discard(3)
        assert first_blocking_condition(load, self.vp) is None
