"""The runtime invariant sanitizer: silent and side-effect-free on a
correct simulator, and provably *able* to detect injected bugs.  Each
mutant here plants a real Pinned Loads implementation bug (the kind a
protocol refactor could introduce) and asserts the sanitized run dies
with the right invariant."""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.params import (CacheParams, DefenseKind,
                                 PinnedLoadsParams, PinningMode,
                                 SystemConfig, ThreatModel)
from repro.core.pipeline import Core
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.mem.coherence import CoherentMemory
from repro.pinning.cst import CacheShadowTable
from repro.sim.runner import run_simulation
from repro.sim.system import System
from repro.workloads import parallel_workload


def load(i, addr, deps=()):
    return MicroOp(i, OpClass.LOAD, addr=addr, deps=deps)


def store(i, addr, deps=()):
    return MicroOp(i, OpClass.STORE, addr=addr, deps=deps)


def alu(i, deps=()):
    return MicroOp(i, OpClass.INT_ALU, deps=deps)


def ep_config(num_cores=2, sanitize=True, **pin_kw):
    pin_kw.setdefault("mode", PinningMode.EARLY)
    return SystemConfig(num_cores=num_cores, defense=DefenseKind.FENCE,
                        threat_model=ThreatModel.MCV,
                        pinning=PinnedLoadsParams(**pin_kw),
                        l1_prefetch=False, sanitize=sanitize)


X = 0x40                       # line 0x1, warmed into S by both cores


def contended_workload():
    """Core 0 holds line 0x1 pinned (older cold load keeps it from being
    the oldest load) while core 1's store wants it exclusive: the write
    must Defer/retry until the pin releases (paper Figure 3b)."""
    t0 = [load(0, 0x100000),   # cold DRAM miss: stays unretired for long
          load(1, X)] + [alu(2 + i) for i in range(4)]
    t1 = [load(0, X),          # makes X warm (shared in both L1s)
          store(1, X)] + [alu(2 + i) for i in range(40)]
    return Workload([Trace(t0), Trace(t1)], name="pin-contention")


class TestHealthySystemsStayClean:
    @pytest.mark.parametrize("mode", [PinningMode.NONE, PinningMode.LATE,
                                      PinningMode.EARLY])
    def test_parallel_run_clean(self, mode):
        config = ep_config(num_cores=4, mode=mode)
        workload = parallel_workload("fft", num_threads=4,
                                     instructions_per_thread=300, seed=11)
        run_simulation(config, workload)    # must not raise

    def test_contended_run_clean_and_defers(self):
        result = run_simulation(ep_config(), contended_workload())
        assert result.cycles > 0

    def test_sanitizer_does_not_change_results(self):
        workload = parallel_workload("radix", num_threads=2,
                                     instructions_per_thread=400, seed=5)
        plain = run_simulation(ep_config(sanitize=False), workload)
        sanitized = run_simulation(ep_config(sanitize=True), workload)
        assert sanitized.cycles == plain.cycles

    def test_off_by_default(self):
        assert SystemConfig().sanitize is False


class TestPinIgnoringInvalidation:
    """Mutant: the core's Defer answer is broken (``has_pinned`` lies),
    so a remote write invalidates a pinned sharer's copy -- the exact
    single-thread-violation window the paper's §5.1.1 pin rule closes."""

    def test_mutant_detected(self, monkeypatch):
        monkeypatch.setattr(Core, "has_pinned", lambda self, line: False)
        with pytest.raises(InvariantViolation) as excinfo:
            run_simulation(ep_config(), contended_workload())
        assert excinfo.value.invariant == "pin-safety"
        assert excinfo.value.trace, "violation carries no event trace"


class TestCstOverSubscription:
    """Mutant: the CST always says yes, so Early Pinning pins more lines
    into an L1 set than it has ways -- the §5.1.4 guarantee gone."""

    def tiny_l1_config(self):
        # 2 sets x 4 ways; CST records matched to the associativity
        return SystemConfig(
            num_cores=1, defense=DefenseKind.FENCE,
            threat_model=ThreatModel.MCV,
            pinning=PinnedLoadsParams(mode=PinningMode.EARLY,
                                      l1_cst_records=4),
            l1d=CacheParams(size_bytes=2 * 4 * 64, ways=4, latency=2),
            l1_prefetch=False, sanitize=True)

    def hot_set_workload(self):
        # a cold blocker plus 12 pinnable loads, all mapping to L1 set 0
        uops = [load(0, 0x100000), MicroOp(1, OpClass.BRANCH, deps=(0,))]
        uops += [load(2 + i, (i * 2) * 64 * 64) for i in range(12)]
        return Workload([Trace(uops)], name="hot-set")

    def test_healthy_cst_keeps_the_bound(self):
        run_simulation(self.tiny_l1_config(), self.hot_set_workload(),
                       warm=False)     # must not raise

    def test_mutant_detected(self, monkeypatch):
        monkeypatch.setattr(CacheShadowTable, "try_pin",
                            lambda self, line, placement, lq_id: True)
        with pytest.raises(InvariantViolation) as excinfo:
            run_simulation(self.tiny_l1_config(), self.hot_set_workload(),
                           warm=False)
        assert excinfo.value.invariant == "cst-capacity"

    def test_inconsistent_geometry_detected(self):
        """Not a code mutant but a config bug the sanitizer must also
        catch: CST records exceeding the L1 associativity void the
        §5.1.4 capacity guarantee."""
        config = SystemConfig(
            num_cores=1, defense=DefenseKind.FENCE,
            threat_model=ThreatModel.MCV,
            pinning=PinnedLoadsParams(mode=PinningMode.EARLY,
                                      l1_cst_records=8),
            l1d=CacheParams(size_bytes=2 * 4 * 64, ways=4, latency=2),
            l1_prefetch=False, sanitize=True)
        with pytest.raises(InvariantViolation) as excinfo:
            run_simulation(config, self.hot_set_workload(), warm=False)
        assert excinfo.value.invariant == "cst-capacity"


class TestDoubleFiredCallback:
    """Mutant: an MSHR retire bug replays completion callbacks, so one
    load completes twice (double wakeups, double stat bumps)."""

    def test_mutant_detected(self, monkeypatch):
        orig_fill = CoherentMemory._l1_fill

        def replaying_fill(self, core_id, line, state):
            mshr = self.mshrs[core_id].outstanding(line)
            callbacks = list(mshr.callbacks) if mshr is not None else []
            orig_fill(self, core_id, line, state)
            for callback in callbacks:      # the bug: fire them again
                callback(self.events.now)

        monkeypatch.setattr(CoherentMemory, "_l1_fill", replaying_fill)
        config = ep_config(num_cores=1, mode=PinningMode.NONE)
        workload = Workload([Trace([load(0, 0x9000)])], name="one-miss")
        with pytest.raises(InvariantViolation) as excinfo:
            run_simulation(config, workload, warm=False)
        assert excinfo.value.invariant == "callback-once"


class TestCptOverSubscription:
    """Mutant: the CPT's room check always says yes, so ``Inv*`` entries
    overflow the 4-entry table (the §5.1.5 structure)."""

    def test_mutant_detected(self, monkeypatch):
        from repro.pinning.cpt import CannotPinTable
        monkeypatch.setattr(CannotPinTable, "_has_room_for",
                            lambda self, writer: True)
        workload = parallel_workload("fft", num_threads=1,
                                     instructions_per_thread=50, seed=1)
        system = System(ep_config(num_cores=1), workload)
        cpt_insert = system.cores[0].controller.cpt.insert
        with pytest.raises(InvariantViolation) as excinfo:
            for line in range(10):          # capacity is 4
                cpt_insert(line)
        assert excinfo.value.invariant == "cpt-occupancy"
