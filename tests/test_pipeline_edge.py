"""Pipeline structural-limit and corner-case behaviour."""

import pytest

from repro.common.params import (CoreParams, DefenseKind, PinnedLoadsParams,
                                 PinningMode, SystemConfig, ThreatModel)
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.sim.runner import run_simulation


def alu(i, deps=()):
    return MicroOp(i, OpClass.INT_ALU, deps=deps)


def load(i, addr, deps=()):
    return MicroOp(i, OpClass.LOAD, addr=addr, deps=deps)


def store(i, addr, deps=(), data_deps=()):
    return MicroOp(i, OpClass.STORE, addr=addr, deps=deps,
                   data_deps=data_deps)


def run_trace(uops, config=None, warm=True):
    config = config or SystemConfig(l1_prefetch=False)
    return run_simulation(config, Workload([Trace(uops)], name="t"),
                          warm=warm)


class TestQueueLimits:
    def test_tiny_lq_still_completes(self):
        config = SystemConfig(core=CoreParams(load_queue_entries=2),
                              l1_prefetch=False)
        uops = [load(i, 0x40 * i) for i in range(20)]
        result = run_trace(uops, config)
        assert result.core_stats[0]["retired"] == 20

    def test_tiny_sq_still_completes(self):
        config = SystemConfig(core=CoreParams(store_queue_entries=2),
                              l1_prefetch=False)
        uops = [store(i, 0x40 * i) for i in range(20)]
        result = run_trace(uops, config)
        assert result.core_stats[0]["retired"] == 20

    def test_tiny_write_buffer_still_completes(self):
        # a 1-entry write buffer serializes retire behind each drain; the
        # run must still complete and perform every store exactly once
        small = SystemConfig(core=CoreParams(write_buffer_entries=1),
                             l1_prefetch=False)
        uops = [store(i, 0x40 * 64 * i) for i in range(12)]
        result = run_trace(uops, small, warm=False)
        assert result.core_stats[0]["retired"] == 12
        assert result.core_stats[0]["stores_performed"] == 12

    def test_single_wide_machine(self):
        config = SystemConfig(core=CoreParams(width=1), l1_prefetch=False)
        result = run_trace([alu(i) for i in range(20)], config)
        assert result.cycles >= 20


class TestStoreDataDeps:
    def test_store_completion_waits_for_data(self):
        # store address is ready immediately, but the data comes from a
        # long FP chain: the store must not retire before the chain ends
        chain = [MicroOp(0, OpClass.FP_ALU)] + [
            MicroOp(i, OpClass.FP_ALU, deps=(i - 1,)) for i in range(1, 10)]
        uops = chain + [store(10, 0x40, data_deps=(9,))]
        result = run_trace(uops)
        assert result.cycles >= 30   # 10 x fp_latency

    def test_store_address_opens_alias_window_early(self):
        # the younger load may NOT be alias-squashed: the store's address
        # is known from dispatch even though its data is late
        chain = [MicroOp(0, OpClass.FP_ALU)] + [
            MicroOp(i, OpClass.FP_ALU, deps=(i - 1,)) for i in range(1, 10)]
        uops = chain + [store(10, 0x40, data_deps=(9,)), load(11, 0x80)]
        result = run_trace(uops)
        assert result.core_stats[0].get("squashes_alias", 0) == 0


class TestLoadReplayCorrectness:
    def test_squashed_outstanding_load_response_ignored(self):
        """A load squashed while its miss is outstanding must not complete
        the replayed instance early or corrupt state."""
        uops = [MicroOp(0, OpClass.FP_ALU),
                MicroOp(1, OpClass.BRANCH, deps=(0,), mispredicted=True),
                load(2, 0x9000)]
        result = run_trace(uops, warm=False)
        assert result.core_stats[0]["retired"] == 3
        assert result.core_stats[0].get("squashes_branch", 0) == 1

    def test_pinning_with_tiny_structures_completes(self):
        config = SystemConfig(
            core=CoreParams(load_queue_entries=4, store_queue_entries=2,
                            write_buffer_entries=2),
            defense=DefenseKind.FENCE, threat_model=ThreatModel.MCV,
            pinning=PinnedLoadsParams(mode=PinningMode.EARLY,
                                      cpt_entries=1, l1_cst_entries=1,
                                      l1_cst_records=1, dir_cst_entries=1,
                                      dir_cst_records=1, w_d=1),
            l1_prefetch=False)
        uops = []
        for i in range(0, 30, 3):
            uops.append(load(i, 0x40 * 64 * i))
            uops.append(store(i + 1, 0x40 * 64 * i))
            uops.append(alu(i + 2))
        result = run_trace(uops, config, warm=False)
        assert result.core_stats[0]["retired"] == 30


class TestDOMProbeSemantics:
    def test_dom_load_waits_then_issues_after_vp(self):
        config = SystemConfig(l1_prefetch=False).with_defense(
            DefenseKind.DOM, ThreatModel.MCV)
        chain = [MicroOp(0, OpClass.FP_ALU)] + [
            MicroOp(i, OpClass.FP_ALU, deps=(i - 1,)) for i in range(1, 8)]
        uops = chain + [MicroOp(8, OpClass.BRANCH, deps=(7,)),
                        load(9, 0x9000)]   # cold miss: stalls until VP
        result = run_trace(uops, config, warm=False)
        assert result.core_stats[0]["retired"] == 10
        assert result.mem_stats["l1_load_misses"] == 1


class TestEmptyAndDegenerate:
    def test_empty_trace_rejected(self):
        with pytest.raises(Exception):
            Workload([Trace([])], name="e").traces[0][0]

    def test_one_uop_trace(self):
        result = run_trace([alu(0)])
        assert result.core_stats[0]["retired"] == 1
        assert result.cycles >= 1

    def test_fence_only_trace(self):
        result = run_trace([MicroOp(0, OpClass.FENCE)])
        assert result.core_stats[0]["retired"] == 1
