"""Coherence edge cases: write-write races, warm-up state, inclusive
invariants, and eviction-retry paths."""

import pytest

from repro.common.addr import slice_of
from repro.common.params import CacheParams, SystemConfig
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.mem.cache import LineState
from repro.mem.coherence import CoherentMemory
from repro.common.events import EventQueue

from tests.test_coherence import (RecordingPort, do_load, do_store,
                                  make_memory, settle)


class TestWriteRaces:
    def test_two_writers_same_line_serialize(self):
        mem, events, _ = make_memory(num_cores=2)
        done = []
        mem.store(0, 5, lambda c: done.append(("a", c)))
        mem.store(1, 5, lambda c: done.append(("b", c)))
        settle(events, horizon=10000)
        assert len(done) == 2
        # exactly one core ends up the owner
        owners = [core for core in (0, 1)
                  if mem.l1s[core].lookup(5, touch=False)
                  is LineState.MODIFIED]
        assert len(owners) == 1

    def test_write_then_read_from_other_core(self):
        mem, events, _ = make_memory(num_cores=2)
        do_store(mem, events, 0, 5)
        do_load(mem, events, 1, 5)
        # owner downgraded, both shared
        assert mem.l1s[0].lookup(5, touch=False) is LineState.SHARED
        assert mem.l1s[1].lookup(5, touch=False) is LineState.SHARED

    def test_upgrade_from_shared(self):
        mem, events, ports = make_memory(num_cores=2)
        do_load(mem, events, 0, 5)
        do_load(mem, events, 1, 5)
        do_store(mem, events, 0, 5)
        assert mem.l1s[0].lookup(5, touch=False) is LineState.MODIFIED
        assert not mem.l1_hit(1, 5)
        assert ports[1].invalidations == [5]


class TestWarmup:
    def _workload(self, addrs_per_thread):
        traces = []
        for addrs in addrs_per_thread:
            uops = [MicroOp(i, OpClass.LOAD, addr=a)
                    for i, a in enumerate(addrs)]
            traces.append(Trace(uops))
        return Workload(traces, name="warm")

    def test_reused_lines_are_warmed(self):
        mem, events, _ = make_memory(num_cores=1, l1_sets=64)
        workload = self._workload([[0x40, 0x40, 0x80, 0x80]])
        mem.warm(workload)
        assert mem.l1_hit(0, 1) and mem.l1_hit(0, 2)

    def test_compulsory_misses_stay_cold(self):
        mem, events, _ = make_memory(num_cores=1, l1_sets=64)
        workload = self._workload([[0x40, 0x80, 0x80]])
        mem.warm(workload)
        assert not mem.l1_hit(0, 1)    # touched once: stays cold
        assert mem.l1_hit(0, 2)

    def test_shared_lines_warm_as_shared(self):
        mem, events, _ = make_memory(num_cores=2, l1_sets=64)
        workload = self._workload([[0x40, 0x40], [0x40, 0x40]])
        mem.warm(workload)
        assert mem.l1s[0].lookup(1, touch=False) is LineState.SHARED
        assert mem.l1s[1].lookup(1, touch=False) is LineState.SHARED

    def test_private_lines_warm_exclusive(self):
        mem, events, _ = make_memory(num_cores=2, l1_sets=64)
        workload = self._workload([[0x40, 0x40], [0x80, 0x80]])
        mem.warm(workload)
        assert mem.l1s[0].lookup(1, touch=False) is LineState.EXCLUSIVE
        assert mem.l1s[1].lookup(2, touch=False) is LineState.EXCLUSIVE

    def test_warm_respects_l1_capacity(self):
        mem, events, _ = make_memory(num_cores=1, l1_sets=4, l1_ways=2)
        # 3 reused lines in the same set: only 2 can stay
        addrs = [0x00, 0x100, 0x200] * 2
        mem.warm(self._workload([addrs]))
        resident = sum(mem.l1_hit(0, line) for line in (0, 4, 8))
        assert resident == 2


class TestInclusionInvariant:
    def test_l1_lines_always_in_llc(self):
        mem, events, _ = make_memory(num_cores=2, l1_sets=8, llc_ways=4)
        for line in range(0, 200, 7):
            do_load(mem, events, line % 2, line)
        for core_id, l1 in enumerate(mem.l1s):
            for set_index in range(l1.num_sets):
                for line in l1.resident_lines(set_index):
                    slice_id = slice_of(line, mem.num_slices)
                    assert mem.slices[slice_id].lookup(line, touch=False) \
                        is not None, f"L1 line {line} not in LLC"

    def test_directory_tracks_holders(self):
        mem, events, _ = make_memory(num_cores=2)
        do_load(mem, events, 0, 5)
        do_load(mem, events, 1, 5)
        slice_id = slice_of(5, mem.num_slices)
        entry = mem.slices[slice_id].lookup(5, touch=False)
        assert entry.holders() == {0, 1}


class TestEvictionRetry:
    def test_l1_fill_waits_when_all_ways_pinned(self):
        mem, events, ports = make_memory(num_cores=1, l1_sets=4, l1_ways=2)
        do_load(mem, events, 0, 0)
        do_load(mem, events, 0, 4)
        ports[0].pinned.update({0, 4})     # whole set 0 pinned
        done = []
        mem.load(0, 8, lambda c: done.append(c))
        for _ in range(6):
            if events.empty:
                break
            events.run_until(events.next_time())
        assert not done
        assert mem.stats["eviction_retries"] >= 1
        ports[0].pinned.clear()            # pinned loads retire
        settle(events, horizon=50000)
        assert done
