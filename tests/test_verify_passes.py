"""The static analysis framework: each pass detects a seeded mutation
of the real sources (the repo's self-test idiom — a checker that cannot
find a planted bug is theater), HEAD analyzes clean, and the shared
driver machinery (waiver audit, baseline, fingerprints, JSON report)
round-trips.
"""

import json
import time
from pathlib import Path

from repro.verify.passes import (Report, analyze_paths, canonical_path,
                                 package_of, write_baseline,
                                 write_manifest)
from repro.verify.passes.base import load_sources

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def copy_tree(tmp_path, *relatives):
    """Copy ``src/repro/<rel>`` files into ``tmp/repro/<rel>`` so the
    canonical-path/package machinery sees them as repro modules."""
    for rel in relatives:
        dst = tmp_path / "repro" / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_text((SRC / rel).read_text())
    return tmp_path / "repro"


def rules_of(report):
    return [f.rule for f in report.findings]


def analyze_clean(paths, **kw):
    kw.setdefault("baseline_path", "/nonexistent-baseline.json")
    return analyze_paths(paths, **kw)


class TestFrameworkBasics:
    def test_canonical_path_strips_to_repro(self):
        assert canonical_path("/work/src/repro/core/pipeline.py") \
            == "repro/core/pipeline.py"
        assert canonical_path("src/repro/cli.py") == "repro/cli.py"
        assert canonical_path("/tmp/x/scratch.py") == "scratch.py"

    def test_package_of(self):
        assert package_of("src/repro/core/pipeline.py") == "core"
        assert package_of("src/repro/cli.py") == ""
        assert package_of("/tmp/loose.py") == ""

    def test_fingerprints_stable_across_checkouts(self, tmp_path):
        source = "import time\nt = time.time()\n"
        prints = []
        for root in ("checkout_a", "checkout_b/nested"):
            base = tmp_path / root / "repro" / "sim"
            base.mkdir(parents=True)
            (base / "mod.py").write_text(source)
            report = analyze_clean([tmp_path / root])
            (finding,) = report.findings
            prints.append(finding.fingerprint)
        assert prints[0] == prints[1]
        assert len(prints[0]) == 16

    def test_identical_lines_get_distinct_fingerprints(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import time\n"
                       "a = time.time()\n"
                       "a = time.time()\n")
        report = analyze_clean([tmp_path])
        prints = {f.fingerprint for f in report.findings}
        assert len(report.findings) == 2
        assert len(prints) == 2

    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = analyze_clean([bad])
        assert rules_of(report) == ["parse-error"]
        assert not report.clean

    def test_report_json_round_trip(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nnow = time.time()\n")
        report = analyze_clean([dirty])
        doc = json.loads(json.dumps(report.to_doc()))
        again = Report.from_doc(doc)
        assert again.to_doc() == report.to_doc()
        assert [f.rule for f in again.errors] == ["wall-clock"]
        assert doc["version"] == 1
        assert doc["summary"]["errors"] == 1


class TestWaiverAudit:
    def test_waiver_suppresses_only_its_line_and_rule(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import time\n"
                       "a = time.time()  # repro: allow-wall-clock\n"
                       "b = time.time()\n")
        report = analyze_clean([mod])
        assert [f.line for f in report.findings
                if f.rule == "wall-clock"] == [3]

    def test_unknown_rule_waiver_is_an_error(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # repro: allow-made-up-rule\n")
        report = analyze_clean([mod])
        (finding,) = report.findings
        assert finding.rule == "unknown-waiver"
        assert finding.severity == "error"
        assert not report.clean

    def test_stale_waiver_is_a_warning(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # repro: allow-wall-clock\n")
        report = analyze_clean([mod])
        (finding,) = report.findings
        assert finding.rule == "stale-waiver"
        assert finding.severity == "warning"
        assert report.clean  # warnings do not gate

    def test_docstring_mention_is_not_a_waiver(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text('"""Docs: use `# repro: allow-wall-clock`."""\n'
                       "x = 1\n")
        report = analyze_clean([mod])
        assert report.findings == []

    def test_waivers_of_skipped_passes_are_not_stale(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # repro: allow-wall-clock\n")
        report = analyze_clean([mod], passes=["determinism"])
        assert report.findings == []


class TestBaseline:
    def test_baselined_finding_does_not_gate(self, tmp_path):
        dirty = tmp_path / "repro" / "sim" / "mod.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("import time\nt = time.time()\n")
        first = analyze_clean([tmp_path])
        assert not first.clean
        baseline = tmp_path / "baseline.json"
        write_baseline(first.errors, baseline)
        second = analyze_paths([tmp_path], baseline_path=baseline)
        assert second.clean
        assert [f.baselined for f in second.findings] == [True]

    def test_new_finding_still_fails_against_baseline(self, tmp_path):
        dirty = tmp_path / "repro" / "sim" / "mod.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(analyze_clean([tmp_path]).errors, baseline)
        dirty.write_text("import time\nt = time.time()\n"
                         "u = time.perf_counter()\n")
        report = analyze_paths([tmp_path], baseline_path=baseline)
        assert not report.clean
        assert len(report.errors) == 1

    def test_stale_baseline_entries_are_counted(self, tmp_path):
        dirty = tmp_path / "repro" / "sim" / "mod.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(analyze_clean([tmp_path]).errors, baseline)
        dirty.write_text("t = 0\n")  # violation fixed
        report = analyze_paths([tmp_path], baseline_path=baseline)
        assert report.clean
        assert report.stale_baseline == 1


class TestWakeupContractMutation:
    """Seeded mutation: delete the re-arm in an event callback."""

    def test_head_pipeline_is_clean(self, tmp_path):
        root = copy_tree(tmp_path, "core/pipeline.py")
        report = analyze_clean([root], passes=["wakeup-contract"])
        assert report.findings == [], report.render_text()

    def test_dropped_rearm_in_event_callback_is_flagged(self, tmp_path):
        root = copy_tree(tmp_path, "core/pipeline.py")
        target = root / "core" / "pipeline.py"
        lines = target.read_text().splitlines(keepends=True)
        start = next(i for i, line in enumerate(lines)
                     if "def _on_addr_ready" in line)
        rearm = next(i for i in range(start, start + 8)
                     if "self._wake_pending = True" in lines[i])
        del lines[rearm]
        target.write_text("".join(lines))
        report = analyze_clean([root], passes=["wakeup-contract"])
        assert any(f.rule == "wakeup-rearm"
                   and "_on_addr_ready" in f.message
                   for f in report.findings), report.render_text()

    def test_rearm_through_a_covered_caller_is_accepted(self, tmp_path):
        mod = tmp_path / "repro" / "pinning" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "class Controller:\n"
            "    def _pin(self, entry):\n"
            "        entry.pinned = True\n"
            "class Core:\n"
            "    def _on_addr_ready(self, entry):\n"
            "        self._wake_pending = True\n"
            "        self.controller._pin(entry)\n")
        report = analyze_clean([tmp_path], passes=["wakeup-contract"])
        assert report.findings == [], report.render_text()

    def test_uncalled_mutator_is_flagged(self, tmp_path):
        mod = tmp_path / "repro" / "pinning" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "class Controller:\n"
            "    def sneaky(self, entry):\n"
            "        entry.pinned = True\n")
        report = analyze_clean([tmp_path], passes=["wakeup-contract"])
        assert rules_of(report) == ["wakeup-rearm"]


class TestCheckpointSafetyMutation:
    """Seeded mutations: strip __slots__, change the state shape."""

    def test_head_trace_module_is_clean(self, tmp_path):
        root = copy_tree(tmp_path, "isa/trace.py")
        report = analyze_clean([root], passes=["checkpoint-safety"])
        assert report.findings == [], report.render_text()

    def test_stripped_slots_is_flagged(self, tmp_path):
        root = copy_tree(tmp_path, "isa/trace.py")
        target = root / "isa" / "trace.py"
        text = target.read_text().replace(
            '    __slots__ = ("_uops", "name", "twins", "has_transient",\n'
            '                 "probe_indices", "__weakref__")\n\n', "", 1)
        assert "_uops" not in text.split("class Trace")[1] \
            .split("def __init__")[0]
        target.write_text(text)
        report = analyze_clean([root], passes=["checkpoint-safety"])
        assert any(f.rule == "checkpoint-slots" and "Trace" in f.message
                   for f in report.findings), report.render_text()

    def test_lambda_callback_is_flagged(self, tmp_path):
        mod = tmp_path / "repro" / "core" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "class C:\n"
            "    __slots__ = ('events',)\n"
            "    def go(self):\n"
            "        self.events.schedule_after(3, lambda: None)\n")
        report = analyze_clean([tmp_path], passes=["checkpoint-safety"])
        assert rules_of(report) == ["checkpoint-lambda"]

    def test_os_resource_slot_is_flagged(self, tmp_path):
        mod = tmp_path / "repro" / "common" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("class C:\n"
                       "    __slots__ = ('_lock', 'value')\n")
        report = analyze_clean([tmp_path], passes=["checkpoint-safety"])
        assert rules_of(report) == ["pickle-unsafe-slot"]

    def test_shape_change_without_version_bump_is_flagged(self,
                                                          tmp_path):
        root = copy_tree(tmp_path, "sim/checkpoint.py", "core/lsq.py")
        manifest = tmp_path / "state_manifest.json"
        write_manifest(load_sources([root]), manifest)
        clean = analyze_clean([root], passes=["checkpoint-safety"],
                              manifest_path=manifest)
        assert clean.findings == [], clean.render_text()
        lsq = root / "core" / "lsq.py"
        lsq.write_text(lsq.read_text().replace(
            '__slots__ = ("capacity", "_ring", "_qmask", "_head", "_tail")',
            '__slots__ = ("capacity", "_ring", "_qmask", "_head", "_tail",\n'
            '                 "_extra")', 1))
        report = analyze_clean([root], passes=["checkpoint-safety"],
                               manifest_path=manifest)
        assert any(f.rule == "checkpoint-manifest"
                   and "CHECKPOINT_FORMAT_VERSION" in f.message
                   for f in report.findings), report.render_text()

    def test_snapshot_layout_drift_without_bump_is_flagged(self,
                                                           tmp_path):
        # format-3 contract: editing an array-backed __getstate__ body
        # is a manifest change even though __slots__ is untouched
        root = copy_tree(tmp_path, "sim/checkpoint.py", "mem/cache.py")
        manifest = tmp_path / "state_manifest.json"
        write_manifest(load_sources([root]), manifest)
        clean = analyze_clean([root], passes=["checkpoint-safety"],
                              manifest_path=manifest)
        assert clean.findings == [], clean.render_text()
        cache = root / "mem" / "cache.py"
        mutated = cache.read_text().replace('"occupied"', '"resident"')
        assert mutated != cache.read_text()
        cache.write_text(mutated)
        report = analyze_clean([root], passes=["checkpoint-safety"],
                               manifest_path=manifest)
        assert any(f.rule == "checkpoint-manifest"
                   and "CacheArray" in f.message
                   for f in report.findings), report.render_text()

    def test_version_bump_demands_regenerated_manifest(self, tmp_path):
        root = copy_tree(tmp_path, "sim/checkpoint.py", "core/lsq.py")
        manifest = tmp_path / "state_manifest.json"
        write_manifest(load_sources([root]), manifest)
        lsq = root / "core" / "lsq.py"
        lsq.write_text(lsq.read_text().replace(
            '__slots__ = ("capacity", "_ring", "_qmask", "_head", "_tail")',
            '__slots__ = ("capacity", "_ring", "_qmask", "_head", "_tail",\n'
            '                 "_extra")', 1))
        ckpt = root / "sim" / "checkpoint.py"
        ckpt.write_text(ckpt.read_text().replace(
            "CHECKPOINT_FORMAT_VERSION = 3",
            "CHECKPOINT_FORMAT_VERSION = 4", 1))
        report = analyze_clean([root], passes=["checkpoint-safety"],
                               manifest_path=manifest)
        assert any(f.rule == "checkpoint-manifest"
                   and "regenerate" in f.message
                   for f in report.findings), report.render_text()
        # regenerating the manifest settles the contract
        write_manifest(load_sources([root]), manifest)
        settled = analyze_clean([root], passes=["checkpoint-safety"],
                                manifest_path=manifest)
        assert settled.findings == [], settled.render_text()


class TestDeterminismMutation:
    """Seeded mutation: strip the env-read waiver from the runner."""

    def test_head_runner_is_clean(self, tmp_path):
        root = copy_tree(tmp_path, "sim/runner.py")
        report = analyze_clean([root], passes=["determinism"])
        assert report.findings == [], report.render_text()

    def test_stripped_waiver_resurfaces_env_read(self, tmp_path):
        root = copy_tree(tmp_path, "sim/runner.py")
        target = root / "sim" / "runner.py"
        text = target.read_text()
        assert "# repro: allow-env-read" in text
        target.write_text(text.replace("  # repro: allow-env-read", ""))
        report = analyze_clean([root], passes=["determinism"])
        assert "env-read" in rules_of(report), report.render_text()

    def test_all_four_rules_fire_in_sim_scope(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import os\n"
            "import random\n"
            "mode = os.environ['MODE']\n"
            "home = os.getenv('HOME')\n"
            "rng = random.Random()\n"
            "srng = random.SystemRandom()\n"
            "def order(entries):\n"
            "    return sorted(entries, key=lambda e: id(e))\n"
            "def dump(obj):\n"
            "    return [k for k in vars(obj)]\n")
        report = analyze_clean([tmp_path], passes=["determinism"])
        rules = set(rules_of(report))
        assert rules == {"env-read", "unseeded-random", "id-ordering",
                         "instance-dict-iteration"}

    def test_out_of_scope_packages_are_ignored(self, tmp_path):
        mod = tmp_path / "repro" / "analysis" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import os\nmode = os.environ['MODE']\n")
        report = analyze_clean([tmp_path], passes=["determinism"])
        assert report.findings == []

    def test_seeded_random_is_fine(self, tmp_path):
        mod = tmp_path / "repro" / "workloads" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import random\nrng = random.Random(1234)\n")
        report = analyze_clean([tmp_path], passes=["determinism"])
        assert report.findings == []


class TestEntropySourceRule:
    """``entropy-source``: the attack generator/oracle must derive every
    address from the experiment seed — an OS-entropy source would make
    leakage verdicts unreproducible."""

    def test_head_attack_suite_is_clean(self, tmp_path):
        root = copy_tree(tmp_path, "security/attacks.py",
                         "security/oracle.py", "security/campaign.py")
        report = analyze_clean([root], passes=["determinism"])
        assert report.findings == [], report.render_text()

    def test_seeded_entropy_mutation_is_caught(self, tmp_path):
        root = copy_tree(tmp_path, "security/attacks.py")
        target = root / "security" / "attacks.py"
        text = target.read_text()
        seeded = "rng = random.Random((seed << 4) ^ " \
                 "ATTACK_CLASSES.index(attack))"
        assert seeded in text
        target.write_text(text.replace("import random", "import random\n"
                                       "import os").replace(
            seeded,
            "rng = random.Random(int.from_bytes(os.urandom(8), 'big'))",
            1))
        report = analyze_clean([root], passes=["determinism"])
        assert "entropy-source" in rules_of(report), report.render_text()

    def test_every_entropy_source_shape_fires(self, tmp_path):
        mod = tmp_path / "repro" / "security" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import os\n"
            "import secrets\n"
            "import uuid\n"
            "from secrets import token_hex\n"
            "a = os.urandom(16)\n"
            "b = uuid.uuid4()\n"
            "c = uuid.uuid1()\n"
            "d = secrets.token_bytes(8)\n"
            "e = secrets.randbelow(10)\n"
            "f = token_hex(4)\n")
        report = analyze_clean([tmp_path], passes=["determinism"])
        assert set(rules_of(report)) == {"entropy-source"}
        assert len(report.findings) == 6

    def test_out_of_scope_entropy_is_ignored(self, tmp_path):
        mod = tmp_path / "repro" / "service" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import os\ntoken = os.urandom(16)\n")
        report = analyze_clean([tmp_path], passes=["determinism"])
        assert report.findings == []


class TestServiceTaxonomyMutation:
    """Seeded mutations: an undocumented raise, a dropped reducer arm."""

    SERVICE_FILES = ("common/errors.py", "service/server.py",
                     "service/journal.py")

    def test_head_service_is_clean(self, tmp_path):
        root = copy_tree(tmp_path, *self.SERVICE_FILES)
        report = analyze_clean([root], passes=["service-taxonomy"])
        assert report.findings == [], report.render_text()

    def test_undocumented_raise_in_handler_is_flagged(self, tmp_path):
        root = copy_tree(tmp_path, *self.SERVICE_FILES)
        server = root / "service" / "server.py"
        server.write_text(server.read_text().replace(
            'raise JobNotFoundError(f"no route for GET',
            'raise RuntimeError(f"no route for GET', 1))
        report = analyze_clean([root], passes=["service-taxonomy"])
        assert any(f.rule == "service-raises"
                   and "RuntimeError" in f.message
                   for f in report.findings), report.render_text()

    def test_dropped_reducer_arm_is_flagged(self, tmp_path):
        root = copy_tree(tmp_path, *self.SERVICE_FILES)
        journal = root / "service" / "journal.py"
        journal.write_text(journal.read_text().replace(
            'elif rtype == "failed":',
            'elif rtype == "dropped":', 1))
        report = analyze_clean([root], passes=["service-taxonomy"])
        rules = rules_of(report)
        assert "journal-exhaustive" in rules, report.render_text()
        assert "journal-unknown-type" in rules
        assert any("'failed'" in f.message for f in report.findings)

    def test_documented_errors_need_the_errors_module(self, tmp_path):
        # single-file analyses have no taxonomy to check against: the
        # rule must skip rather than flag every raise
        root = copy_tree(tmp_path, "service/server.py")
        report = analyze_clean([root], passes=["service-taxonomy"])
        assert report.findings == []


class TestEventDisciplineMutation:
    """Seeded mutations: an unscheduled fault, a time warp."""

    def test_head_chaos_engine_is_clean(self, tmp_path):
        root = copy_tree(tmp_path, "chaos/engine.py")
        report = analyze_clean([root], passes=["event-discipline"])
        assert report.findings == [], report.render_text()

    def test_unscheduled_fault_method_is_flagged(self, tmp_path):
        root = copy_tree(tmp_path, "chaos/engine.py")
        engine = root / "chaos" / "engine.py"
        engine.write_text(
            engine.read_text()
            + "\n    def _rogue_spike(self) -> None:\n"
              "        self.system.cores[0].write_buffer"
              ".backpressure = True\n")
        report = analyze_clean([root], passes=["event-discipline"])
        assert any(f.rule == "unscheduled-chaos-mutation"
                   and "_rogue_spike" in f.message
                   for f in report.findings), report.render_text()

    def test_direct_cycle_write_is_flagged(self, tmp_path):
        root = copy_tree(tmp_path, "chaos/engine.py")
        engine = root / "chaos" / "engine.py"
        engine.write_text(
            engine.read_text()
            + "\n    def _warp(self) -> None:\n"
              "        self.system.events.now += 5\n")
        report = analyze_clean([root], passes=["event-discipline"])
        assert "direct-cycle-write" in rules_of(report), \
            report.render_text()

    def test_scheduled_fault_is_accepted(self, tmp_path):
        mod = tmp_path / "repro" / "chaos" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "class Engine:\n"
            "    def install(self):\n"
            "        self.system.events.schedule_after(10, self._spike)\n"
            "    def _spike(self):\n"
            "        self.system.cores[0].write_buffer"
            ".backpressure = True\n")
        report = analyze_clean([tmp_path], passes=["event-discipline"])
        assert report.findings == [], report.render_text()


class TestOnTheRepository:
    def test_full_analysis_is_clean_and_fast(self):
        start = time.perf_counter()
        report = analyze_paths([SRC])
        elapsed = time.perf_counter() - start
        assert report.clean, report.render_text()
        assert report.warnings == [], report.render_text()
        assert elapsed < 30, f"analyze took {elapsed:.1f}s"

    def test_all_five_passes_ran(self):
        report = analyze_paths([SRC / "verify" / "passes"])
        assert report.passes == ["lint", "wakeup-contract",
                                 "checkpoint-safety", "determinism",
                                 "service-taxonomy", "event-discipline",
                                 "waivers"]
