"""The Sweep helper: grids, geomeans, pinning-parameter sweeps."""

import pytest

from repro.common.params import (DefenseKind, PinningMode, SystemConfig,
                                 ThreatModel)
from repro.sim.runner import scheme_grid
from repro.sim.sweep import Sweep
from repro.workloads import spec17_workload


@pytest.fixture(scope="module")
def sweep():
    workloads = {name: spec17_workload(name, instructions=400)
                 for name in ("leela_r", "namd_r")}
    return Sweep(SystemConfig(), workloads)


class TestSweep:
    def test_requires_workloads(self):
        with pytest.raises(ValueError):
            Sweep(SystemConfig(), {})

    def test_unsafe_is_baseline_one(self, sweep):
        config = SystemConfig().with_defense(DefenseKind.UNSAFE)
        assert sweep.normalized(config, "leela_r") == pytest.approx(1.0)

    def test_grid_covers_all_cells(self, sweep):
        table = sweep.grid(scheme_grid())
        assert set(table) == {"leela_r", "namd_r"}
        assert len(table["leela_r"]) == 12
        assert all(v >= 0.9 for v in table["leela_r"].values())

    def test_geomeans_between_min_and_max(self, sweep):
        cells = {"fence-comp": (DefenseKind.FENCE, ThreatModel.MCV,
                                PinningMode.NONE)}
        table = sweep.grid(cells)
        means = sweep.geomeans(cells)
        values = [table[name]["fence-comp"] for name in table]
        assert min(values) <= means["fence-comp"] <= max(values)

    def test_pinning_sweep_varies_hardware(self, sweep):
        results = sweep.pinning_sweep(
            DefenseKind.FENCE, PinningMode.EARLY,
            {"default": {}, "tiny_cst": {"l1_cst_entries": 1,
                                         "l1_cst_records": 1,
                                         "dir_cst_entries": 1,
                                         "dir_cst_records": 1}})
        assert set(results) == {"default", "tiny_cst"}
        # a crippled CST cannot be faster than the default
        for name in ("leela_r", "namd_r"):
            assert results["tiny_cst"][name] \
                >= results["default"][name] * 0.99

    def test_apply_shares_cache(self, sweep):
        derived = sweep.apply(lambda cfg: cfg.with_defense(
            DefenseKind.FENCE))
        assert derived.cache is sweep.cache
        assert derived.base_config.defense is DefenseKind.FENCE

    def test_runs_are_memoized(self, sweep):
        config = SystemConfig().with_defense(DefenseKind.DOM)
        first = sweep.run_one(config, "leela_r")
        second = sweep.run_one(config, "leela_r")
        assert first is second
