"""Cache Shadow Table behaviour (§5.1.4, §6.2, Figure 6)."""

import pytest

from repro.pinning.cst import ADDR_HASH_BITS, CacheShadowTable, _hash_line


class LiveMap:
    """Stands in for the LQ: maps live LQ IDs to their pinned line."""

    def __init__(self):
        self.lines = {}

    def __call__(self, lq_id):
        return self.lines.get(lq_id)


def make_cst(entries=1, records=2, infinite=False):
    live = LiveMap()
    cst = CacheShadowTable(entries, records, live, infinite=infinite)
    return cst, live


class TestTryPin:
    def test_new_pin_claims_a_record(self):
        cst, live = make_cst()
        live.lines[1] = 100
        assert cst.try_pin(100, placement=("l1", 0), lq_id=1)
        assert cst.stats["new_pins"] == 1

    def test_entry_capacity_enforced(self):
        """The records-per-entry limit is exactly the W_d / W_L1 guarantee."""
        cst, live = make_cst(entries=1, records=2)
        for lq_id, line in enumerate([100, 200]):
            live.lines[lq_id] = line
            assert cst.try_pin(line, ("l1", 0), lq_id)
        live.lines[7] = 300
        assert not cst.try_pin(300, ("l1", 0), 7)
        assert cst.stats["denials"] == 1

    def test_same_line_merges_onto_youngest_lq_id(self):
        """§6.2: a line already pinned by an older load just updates the
        record's LQ ID — no extra capacity is consumed."""
        cst, live = make_cst(entries=1, records=1)
        live.lines[1] = 100
        assert cst.try_pin(100, ("l1", 0), 1)
        live.lines[2] = 100
        assert cst.try_pin(100, ("l1", 0), 2)
        assert cst.stats["merged_pins"] == 1
        # the single record is occupied by line 100 under lq_id 2
        live.lines[3] = 200
        assert not cst.try_pin(200, ("l1", 0), 3)

    def test_stale_records_expunged_lazily(self):
        """§6.2: retired loads leave stale records that are reclaimed only
        when a new pin needs the slot."""
        cst, live = make_cst(entries=1, records=1)
        live.lines[1] = 100
        assert cst.try_pin(100, ("l1", 0), 1)
        del live.lines[1]             # the pinned load retired
        live.lines[2] = 200
        assert cst.try_pin(200, ("l1", 0), 2)

    def test_hash_collision_detected_via_lq_readback(self):
        """§6.2: two lines whose hashes collide in one record must be
        distinguished by reading the LQ entry; the new pin is denied."""
        base = 100
        collider = base + (1 << ADDR_HASH_BITS) * 2654435761 % (10**9)
        # construct a genuine collision by brute force
        collider = next(line for line in range(base + 1, base + 10**6)
                        if _hash_line(line) == _hash_line(base))
        cst, live = make_cst(entries=1, records=4)
        live.lines[1] = base
        assert cst.try_pin(base, ("l1", 0), 1)
        live.lines[2] = collider
        assert not cst.try_pin(collider, ("l1", 0), 2)
        assert cst.stats["hash_collision_denials"] == 1

    def test_infinite_cst_never_denies(self):
        cst, live = make_cst(entries=1, records=1, infinite=True)
        for lq_id in range(50):
            live.lines[lq_id] = 1000 + lq_id
            assert cst.try_pin(1000 + lq_id, ("l1", 0), lq_id)

    def test_placement_hashing_separates_entries(self):
        cst, live = make_cst(entries=16, records=1)
        live.lines[1] = 100
        live.lines[2] = 200
        assert cst.try_pin(100, ("l1", 3), 1)
        # a different placement usually maps to a different entry; at
        # minimum the same placement must conflict:
        live.lines[3] = 300
        assert not cst.try_pin(300, ("l1", 3), 3)


class TestCancelAndClear:
    def test_cancel_rolls_back(self):
        cst, live = make_cst(entries=1, records=1)
        live.lines[1] = 100
        assert cst.try_pin(100, ("l1", 0), 1)
        cst.cancel(100, ("l1", 0), 1)
        live.lines[2] = 200
        assert cst.try_pin(200, ("l1", 0), 2)

    def test_clear_resets_everything(self):
        cst, live = make_cst(entries=2, records=1)
        live.lines[1] = 100
        cst.try_pin(100, ("l1", 0), 1)
        cst.clear()
        live.lines[2] = 200
        for placement in (("l1", 0), ("l1", 1)):
            assert cst.try_pin(200, placement, 2)


class TestGeometry:
    def test_storage_matches_table1(self):
        """Table 1 / §9.2.4: 444 B for the L1 CST, 370 B for the dir CST."""
        live = LiveMap()
        l1_cst = CacheShadowTable(12, 8, live)
        dir_cst = CacheShadowTable(40, 2, live)
        assert l1_cst.storage_bits(lq_id_tag_bits=24) == 444 * 8
        assert dir_cst.storage_bits(lq_id_tag_bits=24) == 370 * 8

    def test_rejects_empty_geometry(self):
        with pytest.raises(ValueError):
            CacheShadowTable(0, 2, LiveMap())

    def test_denial_rate(self):
        cst, live = make_cst(entries=1, records=1)
        live.lines[1] = 100
        cst.try_pin(100, ("l1", 0), 1)
        live.lines[2] = 200
        cst.try_pin(200, ("l1", 0), 2)
        assert cst.denial_rate == pytest.approx(0.5)
