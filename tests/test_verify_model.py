"""The protocol model checker: clean explorations, exact transition
coverage, counterexample traces, and the checker's own mutation
self-tests (an exploration that cannot detect a known-bad protocol is
worthless)."""

import pytest

from repro.common.errors import VerificationError
from repro.verify.explorer import EXPECTED_DEAD, explore
from repro.verify.model import MUTATIONS, Event, ModelConfig


class TestCleanExploration:
    def test_two_cores_one_line(self):
        result = explore(ModelConfig(cores=2, lines=1))
        assert result.ok, "\n".join(str(v) for v in result.violations)
        assert result.num_states == 272
        assert result.num_transitions > result.num_states

    def test_three_cores_one_line(self):
        result = explore(ModelConfig(cores=3, lines=1))
        assert result.ok, "\n".join(str(v) for v in result.violations)
        assert result.num_states == 4368

    def test_two_cores_two_lines_exhaustive(self):
        """The ISSUE acceptance configuration: 2 cores x 2 lines, fully
        explored, zero violations."""
        result = explore(ModelConfig(cores=2, lines=2))
        assert result.ok, "\n".join(str(v) for v in result.violations)
        assert result.num_states == 73984

    def test_dead_pairs_match_expected_exactly(self):
        result = explore(ModelConfig(cores=2, lines=1))
        assert set(result.dead_pairs()) == set(EXPECTED_DEAD)

    def test_exploration_bound_raises(self):
        with pytest.raises(VerificationError):
            explore(ModelConfig(cores=2, lines=2, max_states=100))


class TestMutationSelfTests:
    """Every named protocol bug must produce at least one violation, in
    the invariant family the bug breaks."""

    EXPECTED_FAMILY = {
        "invalidate_pinned": "state",       # pinned sharer loses its copy
        "evict_pinned": "state",            # pinned victim evicted
        "skip_cpt_insert": "transition",    # starving writer unprotected
        "clear_on_defer": "transition",     # CPT entry dropped too early
        "pin_ignores_cpt": "transition",    # pin lands on a CPT line
    }

    def test_families_cover_all_mutations(self):
        assert set(self.EXPECTED_FAMILY) == set(MUTATIONS)

    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_mutation_is_caught(self, mutation):
        result = explore(ModelConfig(cores=2, lines=1,
                                     mutate=frozenset({mutation})))
        assert not result.ok, f"checker missed mutation {mutation!r}"
        families = {v.invariant for v in result.violations}
        assert self.EXPECTED_FAMILY[mutation] in families

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(mutate=frozenset({"not_a_mutation"}))


class TestCounterexamples:
    def test_violation_carries_replayable_trace(self):
        result = explore(ModelConfig(cores=2, lines=1,
                                     mutate=frozenset({"evict_pinned"})))
        violation = result.violations[0]
        assert violation.trace, "counterexample trace is empty"
        assert all(isinstance(event, Event) for event in violation.trace)
        # the trace must replay to a state exhibiting the violation
        from repro.verify.model import PinnedProtocolModel
        model = PinnedProtocolModel(
            ModelConfig(cores=2, lines=1,
                        mutate=frozenset({"evict_pinned"})))
        state = model.initial_state()
        for event in violation.trace:
            assert event in model.enabled_events(state), \
                f"{event} not enabled along its own counterexample"
            state = model.apply(state, event)
        assert model.check_state(state), \
            "replayed counterexample reaches a clean state"
