"""Micro-op and trace container invariants."""

import pytest

from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass


def _alu(index, deps=()):
    return MicroOp(index, OpClass.INT_ALU, deps=deps)


class TestMicroOp:
    def test_load_requires_address(self):
        with pytest.raises(ValueError):
            MicroOp(0, OpClass.LOAD)

    def test_store_requires_address(self):
        with pytest.raises(ValueError):
            MicroOp(0, OpClass.STORE)

    def test_deps_must_be_older(self):
        with pytest.raises(ValueError):
            MicroOp(3, OpClass.INT_ALU, deps=(3,))
        with pytest.raises(ValueError):
            MicroOp(3, OpClass.INT_ALU, deps=(7,))

    def test_classification_properties(self):
        load = MicroOp(1, OpClass.LOAD, addr=0x40)
        assert load.is_load and load.is_memory
        assert not load.is_store and not load.is_branch
        store = MicroOp(1, OpClass.STORE, addr=0x40)
        assert store.is_store and store.is_memory
        branch = MicroOp(1, OpClass.BRANCH)
        assert branch.is_branch and not branch.is_memory

    def test_serializing_classes(self):
        assert MicroOp(0, OpClass.FENCE).is_serializing
        assert MicroOp(0, OpClass.ATOMIC, addr=0).is_serializing
        assert MicroOp(0, OpClass.BARRIER, barrier_id=0).is_serializing
        assert not MicroOp(0, OpClass.LOAD, addr=0).is_serializing

    def test_atomic_is_memory(self):
        assert MicroOp(0, OpClass.ATOMIC, addr=0x80).is_memory

    def test_repr_mentions_class_and_index(self):
        text = repr(MicroOp(7, OpClass.LOAD, addr=0x1C0))
        assert "#7" in text and "ld" in text


class TestTrace:
    def test_indices_must_be_sequential(self):
        with pytest.raises(ValueError):
            Trace([_alu(0), _alu(2)])

    def test_len_and_getitem(self):
        trace = Trace([_alu(0), _alu(1, deps=(0,))])
        assert len(trace) == 2
        assert trace[1].deps == (0,)

    def test_count_by_class(self):
        trace = Trace([_alu(0), MicroOp(1, OpClass.LOAD, addr=0x40),
                       MicroOp(2, OpClass.LOAD, addr=0x80)])
        assert trace.count(OpClass.LOAD) == 2
        assert trace.count(OpClass.BRANCH) == 0

    def test_mix_sums_to_one(self):
        trace = Trace([_alu(0), MicroOp(1, OpClass.LOAD, addr=0x40)])
        assert sum(trace.mix().values()) == pytest.approx(1.0)

    def test_footprint_counts_distinct_lines(self):
        trace = Trace([MicroOp(0, OpClass.LOAD, addr=0x00),
                       MicroOp(1, OpClass.LOAD, addr=0x3F),   # same line
                       MicroOp(2, OpClass.STORE, addr=0x40)])
        assert trace.footprint_lines() == 2


class TestWorkload:
    def test_requires_at_least_one_trace(self):
        with pytest.raises(ValueError):
            Workload([])

    def test_aggregates(self):
        t1 = Trace([_alu(0)])
        t2 = Trace([_alu(0), _alu(1)])
        workload = Workload([t1, t2], name="w")
        assert workload.num_threads == 2
        assert workload.total_instructions == 3
        assert "w" in repr(workload)
