"""The invisible-speculation (InvisiSpec-class) defense scheme."""

import pytest

from repro.common.params import (DefenseKind, PinningMode, SystemConfig,
                                 ThreatModel)
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.security.scheme import IssueMode
from repro.sim.runner import run_simulation
from repro.workloads import spec17_workload

BASE = SystemConfig(l1_prefetch=False)


def fp(i, deps=()):
    return MicroOp(i, OpClass.FP_ALU, deps=deps)


def load(i, addr, deps=()):
    return MicroOp(i, OpClass.LOAD, addr=addr, deps=deps)


def run(uops, config, warm=True):
    return run_simulation(config, Workload([Trace(uops)], name="t"),
                          warm=warm)


def window_trace():
    uops = [load(k, 0x40 * (k + 1)) for k in range(4)]      # warm touches
    uops += [fp(4)] + [fp(i, deps=(i - 1,)) for i in range(5, 15)]
    uops += [MicroOp(15, OpClass.BRANCH, deps=(14,))]
    uops += [load(16 + k, 0x40 * (k + 1)) for k in range(4)]
    return uops


class TestInvisibleIssue:
    def test_pre_vp_loads_issue_invisibly(self):
        config = BASE.with_defense(DefenseKind.INVISI)
        result = run(window_trace(), config)
        assert result.core_stats[0].get("loads_issued_invisible", 0) >= 4
        assert result.mem_stats.get("invisible_loads", 0) >= 4

    def test_invisible_loads_leave_no_cache_state(self):
        """The defining property: an invisible access must not fill the
        cache — the validation access at the VP misses again."""
        config = BASE.with_defense(DefenseKind.INVISI)
        uops = [fp(0)] + [fp(i, deps=(i - 1,)) for i in range(1, 12)] \
            + [MicroOp(12, OpClass.BRANCH, deps=(11,)),
               load(13, 0x9000)]
        result = run(uops, config, warm=False)
        # two full misses for one load: the invisible fetch (uncounted in
        # l1 stats) and the visible validation
        assert result.mem_stats.get("invisible_loads", 0) == 1
        assert result.mem_stats.get("l1_load_misses", 0) == 1

    def test_every_invisible_load_validates_before_retiring(self):
        config = BASE.with_defense(DefenseKind.INVISI)
        result = run(window_trace(), config)
        stats = result.core_stats[0]
        assert stats.get("validations_completed", 0) \
            >= stats.get("loads_issued_invisible", 0) \
            - stats.get("squashed_uops", 0)
        assert stats["retired"] == len(window_trace())

    def test_dataflow_benefits_from_invisible_data(self):
        """Consumers wake on the invisible data, so invisi beats Fence
        (which provides no data at all until the VP)."""
        config_invisi = BASE.with_defense(DefenseKind.INVISI)
        config_fence = BASE.with_defense(DefenseKind.FENCE)
        # dependent chain behind a load inside the speculative window
        uops = [load(0, 0x40)]   # warm touch
        uops += [fp(1)] + [fp(i, deps=(i - 1,)) for i in range(2, 12)]
        uops += [MicroOp(12, OpClass.BRANCH, deps=(11,)), load(13, 0x40)]
        uops += [fp(14 + k, deps=(13 + k,)) for k in range(8)]
        invisi = run(uops, config_invisi)
        fence = run(uops, config_fence)
        assert invisi.cycles <= fence.cycles

    def test_issue_mode_enum(self):
        from repro.security import InvisibleSpecScheme
        scheme = InvisibleSpecScheme(core=None)
        assert scheme.pre_vp_issue_mode(None) is IssueMode.INVISIBLE
        assert scheme.may_issue_pre_vp(None)


class TestInvisiWithPinning:
    @pytest.mark.parametrize("mode", [PinningMode.LATE, PinningMode.EARLY])
    def test_pinning_accelerates_validation(self, mode):
        workload = spec17_workload("bwaves_r", instructions=1500)
        comp = run_simulation(BASE.with_defense(DefenseKind.INVISI),
                              workload)
        pinned = run_simulation(
            BASE.with_defense(DefenseKind.INVISI, pinning_mode=mode),
            workload)
        assert pinned.cycles < comp.cycles

    def test_pinned_invisi_never_squashes_pinned_loads(self):
        workload = spec17_workload("mcf_r", instructions=1500)
        result = run_simulation(
            BASE.with_defense(DefenseKind.INVISI,
                              pinning_mode=PinningMode.EARLY), workload)
        squashed_pins = sum(s.get("pinned_squashed", 0)
                            for s in result.pinning_stats.values())
        assert squashed_pins == 0
        assert result.core_stats[0]["retired"] == 1500

    def test_grid_ordering_holds_for_invisi(self):
        workload = spec17_workload("fotonik3d_r", instructions=1500)
        unsafe = run_simulation(SystemConfig(), workload)
        cycles = {}
        for label, threat, pin in [("comp", ThreatModel.MCV,
                                    PinningMode.NONE),
                                   ("ep", ThreatModel.MCV,
                                    PinningMode.EARLY),
                                   ("spectre", ThreatModel.CTRL,
                                    PinningMode.NONE)]:
            config = SystemConfig().with_defense(DefenseKind.INVISI,
                                                 threat, pin)
            cycles[label] = run_simulation(config, workload).cycles
        assert cycles["comp"] > cycles["ep"]
        assert cycles["ep"] >= cycles["spectre"] * 0.9
        assert cycles["comp"] > unsafe.cycles
