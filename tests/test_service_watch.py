"""The streaming results feed (long-poll ``GET /jobs?watch=``), the
client's watch-first ``wait`` with capped-exponential poll fallback,
and per-tenant quotas crossing the HTTP boundary."""

import threading

import pytest

from repro.common.errors import (BadRequestError, JobNotFoundError,
                                 QuotaExceededError)
from repro.service import client as client_mod
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec
from repro.service.server import ServiceServer
from repro.service.supervisor import Supervisor

SPEC = JobSpec(workload="mcf_r", scheme="unsafe", instructions=300,
               threads=1)


def start_server(supervisor):
    server = ServiceServer(("127.0.0.1", 0), supervisor)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


@pytest.fixture()
def service(tmp_path):
    """(supervisor, client) around a live server; worker started."""
    supervisor = Supervisor(str(tmp_path / "service"), jobs=1,
                            fsync=False, heartbeat_s=0.02)
    server, url = start_server(supervisor)
    supervisor.start()
    client = ServiceClient(url, retries=2, backoff_s=0.01,
                           timeout_s=10.0)
    try:
        yield supervisor, client
    finally:
        server.shutdown()
        server.server_close()
        supervisor.drain(wait=True, timeout_s=10.0)
        supervisor.close()


@pytest.fixture()
def idle_service(tmp_path):
    """A service whose worker is *not* running: jobs stay queued, which
    pins down pending/timeout behavior deterministically."""
    supervisor = Supervisor(str(tmp_path / "idle"), jobs=1, fsync=False,
                            tenant_capacity=1)
    server, url = start_server(supervisor)
    client = ServiceClient(url, retries=0, timeout_s=10.0)
    try:
        yield supervisor, client
    finally:
        server.shutdown()
        server.server_close()
        supervisor.close()


class FakeClock:
    """Stands in for the ``time`` module inside the client: sleeps
    advance virtual time instantly and are recorded."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestWatchEndpoint:
    def test_watch_returns_terminal_doc_with_result(self, service):
        _supervisor, client = service
        job_id = client.submit(SPEC)["job"]
        done = client.watch([job_id], timeout_s=30.0)
        assert set(done) == {job_id}
        assert done[job_id]["status"] == "done"
        assert done[job_id]["result"]["cycles"] > 0

    def test_wait_prefers_watch_and_never_polls(self, service):
        _supervisor, client = service
        result = client.run(SPEC, timeout_s=60.0)
        assert result.cycles > 0
        assert client._watch_supported is True

    def test_watch_timeout_reports_pending(self, idle_service):
        _supervisor, client = idle_service
        job_id = client.submit(SPEC)["job"]
        doc = client._request(
            "GET", f"/jobs?watch={job_id}&timeout_s=0.1")
        assert doc["jobs"] == {}
        assert doc["pending"] == [job_id]

    def test_watch_unknown_job_is_404(self, service):
        _supervisor, client = service
        with pytest.raises(JobNotFoundError):
            client._request_once(
                "GET", f"/jobs?watch={'0' * 64}&timeout_s=0.1", None)

    def test_watch_without_ids_is_400(self, service):
        _supervisor, client = service
        with pytest.raises(BadRequestError):
            client._request_once("GET", "/jobs?watch=", None)
        with pytest.raises(BadRequestError):
            client._request_once(
                "GET", "/jobs?watch=abc&timeout_s=soon", None)

    def test_fallback_when_server_predates_watch(self, service,
                                                 monkeypatch):
        """A 404 on the watch route flips the client to polling — the
        compatibility path against pre-watch servers."""
        _supervisor, client = service

        def no_route(job_ids, timeout_s=0.0):
            raise JobNotFoundError("no route for GET /jobs")

        monkeypatch.setattr(client, "watch", no_route)
        result = client.run(SPEC, timeout_s=60.0)
        assert result.cycles > 0
        assert client._watch_supported is False


class TestPollBackoff:
    def wait_against_stub(self, status_docs, **wait_kwargs):
        """Drive ``wait`` (polling path) against a canned status doc
        and a fake clock; returns the recorded sleep schedule."""
        client = ServiceClient("http://127.0.0.1:1", jitter_seed=7)
        client._watch_supported = False
        client.job = lambda job_id: dict(status_docs)
        clock = FakeClock()
        original_time = client_mod.time
        client_mod.time = clock
        try:
            with pytest.raises(TimeoutError):
                client.wait("f" * 64, **wait_kwargs)
        finally:
            client_mod.time = original_time
        return clock.sleeps

    def test_backoff_doubles_up_to_cap(self):
        sleeps = self.wait_against_stub(
            {"status": "queued"}, timeout_s=30.0, poll_s=0.2,
            poll_cap_s=2.0)
        assert sleeps, "polling must sleep between requests"
        # jitter is in [0.5, 1.0) of the current delay: every sleep
        # sits inside the geometric envelope and under the cap
        assert all(sleep <= 2.0 for sleep in sleeps)
        assert sleeps[0] <= 0.2
        assert max(sleeps) > 4 * sleeps[0]  # it actually backed off
        # nothing hammers: total request count is logarithmic-ish, not
        # timeout/poll_s (which would be 150 at the old fixed interval)
        assert len(sleeps) < 40

    def test_retry_after_hint_is_honored(self):
        sleeps = self.wait_against_stub(
            {"status": "queued", "retry_after_s": 0.7}, timeout_s=10.0,
            poll_s=0.01, poll_cap_s=5.0)
        assert sleeps
        assert all(sleep >= 0.7 for sleep in sleeps)

    def test_seeded_schedule_is_reproducible(self):
        first = self.wait_against_stub(
            {"status": "queued"}, timeout_s=20.0, poll_s=0.1,
            poll_cap_s=1.0)
        second = self.wait_against_stub(
            {"status": "queued"}, timeout_s=20.0, poll_s=0.1,
            poll_cap_s=1.0)
        assert first == second  # same jitter_seed -> same timing


class TestTenantQuotas:
    def test_quota_crosses_the_wire(self, idle_service):
        """tenant_capacity=1: a tenant's second distinct pending job is
        refused with the documented 429 ``quota-exceeded``; another
        tenant still gets in; resubmission of the queued job dedups
        instead of double-counting against the quota."""
        _supervisor, client = idle_service
        first = JobSpec(workload="mcf_r", instructions=301, threads=1,
                        tenant="alice")
        second = JobSpec(workload="mcf_r", instructions=302, threads=1,
                         tenant="alice")
        third = JobSpec(workload="mcf_r", instructions=303, threads=1,
                        tenant="bob")
        assert client.submit(first)["status"] == "queued"
        with pytest.raises(QuotaExceededError) as refused:
            client.submit(second)
        assert refused.value.code == "quota-exceeded"
        assert refused.value.retry_after_s is not None
        assert client.submit(third)["status"] == "queued"
        # idempotent resubmission of a queued job is not a quota event
        assert client.submit(first)["status"] == "queued"

    def test_queued_status_carries_backpressure_hint(self, idle_service):
        _supervisor, client = idle_service
        doc = client.submit(SPEC)
        assert doc["status"] == "queued"
        assert doc["retry_after_s"] > 0
