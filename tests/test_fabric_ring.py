"""The consistent-hash ring: determinism, balance, replica placement,
and ring-config validation — the routing layer every fabric client and
shard must compute identically from the same member list."""

import collections

import pytest

from repro.common.errors import BadRequestError
from repro.service.fabric.ring import HashRing, parse_ring

NODES = ["http://127.0.0.1:9001", "http://127.0.0.1:9002",
         "http://127.0.0.1:9003"]


def keys(n):
    """Deterministic sha256-shaped job ids."""
    return [f"{i:064x}" for i in range(n)]


class TestParseRing:
    def test_comma_string_and_list_agree(self):
        assert parse_ring(",".join(NODES)) == parse_ring(NODES) == NODES

    def test_trailing_slash_normalized(self):
        assert parse_ring(["http://a:1/"]) == ["http://a:1"]

    def test_empty_ring_rejected(self):
        with pytest.raises(BadRequestError):
            parse_ring("")
        with pytest.raises(BadRequestError):
            parse_ring([" ", ""])

    def test_non_http_member_rejected(self):
        with pytest.raises(BadRequestError, match="not an http"):
            parse_ring(["127.0.0.1:9001"])

    def test_duplicate_members_rejected(self):
        with pytest.raises(BadRequestError, match="distinct"):
            parse_ring(["http://a:1", "http://a:1/"])

    def test_is_a_value_error(self):
        # CLI paths catch ValueError; the taxonomy class must be one
        with pytest.raises(ValueError):
            parse_ring("")


class TestRouting:
    def test_route_is_deterministic_across_instances(self):
        a, b = HashRing(NODES), HashRing(NODES)
        assert all(a.route(k) == b.route(k) for k in keys(100))

    def test_replica_set_is_distinct_and_sized(self):
        ring = HashRing(NODES, replicas=2)
        for key in keys(100):
            route = ring.route(key)
            assert len(route) == 2
            assert len(set(route)) == 2
            assert all(node in NODES for node in route)

    def test_replicas_clamped_to_ring_size(self):
        ring = HashRing(NODES[:1], replicas=3)
        assert ring.route(keys(1)[0]) == NODES[:1]

    def test_primary_is_first_of_route(self):
        ring = HashRing(NODES)
        key = keys(1)[0]
        assert ring.primary(key) == ring.route(key)[0]

    def test_load_split_is_roughly_balanced(self):
        ring = HashRing(NODES)
        counts = collections.Counter(ring.primary(k) for k in keys(600))
        assert set(counts) == set(NODES)  # nobody owns nothing
        assert max(counts.values()) < 3 * min(counts.values())

    def test_share_estimates_sum_to_one(self):
        describe = HashRing(NODES).describe()
        assert describe["nodes"] == NODES
        assert abs(sum(describe["share"].values()) - 1.0) < 0.01

    def test_losing_a_shard_scatters_not_dogpiles(self):
        """Keys whose primary dies move to *several* survivors (vnodes
        diversify the successor sets) — failover load spreads."""
        full = HashRing(NODES)
        victim = NODES[0]
        orphans = [k for k in keys(400) if full.primary(k) == victim]
        survivors = HashRing(NODES[1:])
        landed = collections.Counter(survivors.primary(k)
                                     for k in orphans)
        assert set(landed) == set(NODES[1:])

    def test_failover_target_is_old_replica(self):
        """The shard a key lands on after its primary dies is the
        key's old replica — which is why replicas are where the
        FederatedClient resubmits."""
        full = HashRing(NODES, replicas=2)
        for key in keys(120):
            primary, replica = full.route(key)
            without = [n for n in NODES if n != primary]
            assert HashRing(without, replicas=2).primary(key) == replica

    def test_bad_parameters_rejected(self):
        with pytest.raises(BadRequestError):
            HashRing(NODES, replicas=0)
        with pytest.raises(BadRequestError):
            HashRing(NODES, vnodes=0)
