"""Randomized soundness of the ``Core.quiet_until`` wakeup contract.

``System.run`` fast-forwards over cycles every live core declares quiet.
Since the defended schemes (fence/DOM/STT x Comp/LP/EP/Spectre) now
participate via the ``_wake_pending`` dirty flag, the property that
keeps the optimization honest is: for *any* generated workload and *any*
scheme, with or without chaos fault injection, the optimized loop must
be indistinguishable from the cycle-by-cycle reference loop — equal
cycle counts and equal per-core pipeline *and* pinning statistics.

A second property pins down the escape hatch: sanitized runs
(``config.sanitize``) must still visit every single cycle, because the
sanitizer's invariant checks are per-tick observations that a skipped
cycle would silently drop.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.params import ChaosConfig, SystemConfig
from repro.sim.runner import scheme_grid
from repro.sim.system import System
from repro.workloads import WorkloadProfile, build_workload

BASE = SystemConfig()

#: Label -> config for every scheme the paper measures, plus unsafe.
SCHEMES = dict(
    [("unsafe", BASE)]
    + [(label, BASE.with_defense(defense, threat, pinning))
       for label, (defense, threat, pinning)
       in sorted(scheme_grid().items())])

#: Every fault class on: jitter+reorder, NACKs, evictions, WB spikes.
CHAOS = ChaosConfig(seed=3, wb_spike_interval=300)

PROFILES = st.builds(
    WorkloadProfile,
    name=st.just("quiet"),
    load_frac=st.floats(min_value=0.1, max_value=0.35),
    store_frac=st.floats(min_value=0.02, max_value=0.15),
    branch_frac=st.floats(min_value=0.02, max_value=0.25),
    fp_frac=st.floats(min_value=0.0, max_value=0.9),
    mispredict_rate=st.floats(min_value=0.0, max_value=0.15),
    warm_frac=st.floats(min_value=0.0, max_value=0.3),
    stream_frac=st.floats(min_value=0.0, max_value=0.2),
    dependent_load_frac=st.floats(min_value=0.0, max_value=0.5),
    hot_lines=st.integers(min_value=16, max_value=512),
    warm_lines=st.integers(min_value=512, max_value=4096),
)

SLOW = settings(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _run_both(config, workload):
    """Fresh systems through both loops; returns (optimized, reference)."""
    opt = System(config, workload)
    opt.mem.warm(workload)
    opt.run()
    ref = System(config, workload)
    ref.mem.warm(workload)
    ref.run_reference()
    return opt, ref


def _assert_indistinguishable(opt, ref, label):
    assert opt.cycles == ref.cycles, label
    for oc, rc in zip(opt.cores, ref.cores):
        assert oc.stats.as_dict() == rc.stats.as_dict(), \
            f"{label}: core {oc.core_id} pipeline stats"
        assert oc.controller.stats.as_dict() \
            == rc.controller.stats.as_dict(), \
            f"{label}: core {oc.core_id} pinning stats"
        assert oc.retired == rc.retired, label


class TestQuietUntilSoundness:
    @SLOW
    @given(profile=PROFILES,
           seed=st.integers(min_value=1, max_value=50),
           label=st.sampled_from(sorted(SCHEMES)),
           chaos=st.booleans())
    def test_run_matches_reference(self, profile, seed, label, chaos):
        """Fast-forward may only skip provably dead cycles: for any
        workload, scheme, and fault schedule, ``run`` must match
        ``run_reference`` on cycles and every per-core statistic."""
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=250)
        config = SCHEMES[label]
        if chaos:
            config = dataclasses.replace(config, chaos=CHAOS)
        opt, ref = _run_both(config, workload)
        _assert_indistinguishable(opt, ref,
                                  f"{label} chaos={chaos} seed={seed}")


class TestSanitizedRunsNeverSkip:
    @SLOW
    @given(profile=PROFILES,
           seed=st.integers(min_value=1, max_value=50),
           label=st.sampled_from(sorted(SCHEMES)))
    def test_sanitized_run_visits_every_cycle(self, profile, seed, label):
        """With the sanitizer attached, ``run`` must tick every cycle:
        its per-tick invariant checks only cover cycles that happen."""
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=200)
        config = dataclasses.replace(SCHEMES[label], sanitize=True)
        system = System(config, workload)
        system.mem.warm(workload)
        visited = set()
        for core in system.cores:
            # shadow the (already sanitizer-wrapped) bound tick with a
            # recording wrapper; Core carries __dict__ exactly so such
            # instance-level shims are possible
            def recording_tick(cycle, _inner=core.tick):
                visited.add(cycle)
                return _inner(cycle)
            core.tick = recording_tick
        cycles = system.run()
        assert visited == set(range(1, cycles + 1)), label
