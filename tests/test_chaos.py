"""Deterministic fault injection (``repro.chaos``).

The chaos engine's contract has three legs:

* **determinism** — a chaos run is a pure function of (config,
  workload): same seed, same faults, same cycle count, same stats;
* **architectural invariance** — any seed may change *timing* (cycles,
  miss counts) but never *architecture*: the retired instruction
  stream, its FNV signature, and branch-squash counts match the
  fault-free run, and the sanitizer stays silent;
* **teeth** — the ``evict-pinned`` mutation, which deliberately evicts
  pinned lines, must be caught by the sanitizer's pin-safety invariant
  (otherwise a green campaign proves nothing).

Plus the campaign runner that packages all of this, and the structured
diagnostic dump attached to ``DeadlockError``.
"""

import dataclasses

import pytest

from repro.chaos.campaign import architectural_fingerprint, run_campaign
from repro.chaos.engine import ChaosEngine
from repro.common.errors import (ConfigError, DeadlockError,
                                 InvariantViolation)
from repro.common.params import (COMPREHENSIVE, ChaosConfig, DefenseKind,
                                 PinningMode, SystemConfig)
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.sim.runner import run_simulation
from repro.sim.system import System
from repro.workloads import parallel_workload, spec17_workload

BASE = SystemConfig()
FENCE_EP = BASE.with_defense(DefenseKind.FENCE, COMPREHENSIVE,
                             PinningMode.EARLY)

#: Exercises every fault class: jitter+reorder, NACKs, forced evictions,
#: and write-buffer backpressure spikes.
FULL_CHAOS = ChaosConfig(seed=0, wb_spike_interval=300)


def small_workload(instructions=800):
    return spec17_workload("mcf_r", instructions=instructions)


def chaos_run(config, workload, **chaos_fields):
    chaotic = dataclasses.replace(
        config, chaos=dataclasses.replace(FULL_CHAOS, **chaos_fields))
    return run_simulation(chaotic, workload)


class TestConfigValidation:
    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigError):
            ChaosConfig(msg_jitter_prob=1.5).validate()
        with pytest.raises(ConfigError):
            ChaosConfig(nack_prob=-0.1).validate()

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ConfigError):
            ChaosConfig(mutate="evict-everything").validate()

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigError):
            ChaosConfig(msg_jitter=-1).validate()
        with pytest.raises(ConfigError):
            ChaosConfig(evict_interval=-5).validate()

    def test_system_config_validates_chaos(self):
        bad = dataclasses.replace(BASE, chaos=ChaosConfig(nack_prob=2.0))
        with pytest.raises(ConfigError):
            bad.validate()


class TestDeterminism:
    def test_same_seed_same_run(self):
        workload = small_workload()
        first = chaos_run(FENCE_EP, workload, seed=3)
        second = chaos_run(FENCE_EP, workload, seed=3)
        assert first.to_dict() == second.to_dict()

    def test_faults_actually_injected(self):
        result = chaos_run(FENCE_EP, small_workload())
        assert result.network_stats.get("chaos_jitter_msgs", 0) > 0
        assert result.mem_stats.get("chaos_nacks", 0) > 0
        assert result.mem_stats.get("chaos_forced_evictions", 0) > 0
        assert result.mem_stats.get("chaos_wb_spikes", 0) > 0


class TestArchitecturalInvariance:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_chaos_never_changes_architecture(self, seed):
        workload = small_workload()
        baseline = run_simulation(FENCE_EP, workload)
        chaotic = chaos_run(FENCE_EP, workload, seed=seed)
        assert architectural_fingerprint(chaotic) \
            == architectural_fingerprint(baseline)

    def test_invariance_holds_multithreaded(self):
        workload = parallel_workload("radix", num_threads=2,
                                     instructions_per_thread=400)
        config = SystemConfig(num_cores=2).with_defense(
            DefenseKind.FENCE, COMPREHENSIVE, PinningMode.LATE)
        baseline = run_simulation(config, workload)
        chaotic = chaos_run(config, workload, seed=5)
        assert architectural_fingerprint(chaotic) \
            == architectural_fingerprint(baseline)

    def test_sanitizer_silent_under_chaos(self):
        config = dataclasses.replace(FENCE_EP, sanitize=True)
        # raises InvariantViolation if any injected fault broke a rule
        chaos_run(config, small_workload(), seed=9)


class TestNackBackoff:
    def test_backoff_grows_then_escapes_livelock(self):
        """With nack_prob=1 every request is NACKed until the escape
        hatch: delays grow exponentially to the cap, and after
        ``max_nacks`` consecutive NACKs the request is admitted."""
        config = ChaosConfig(nack_prob=1.0, nack_backoff=8,
                             nack_backoff_cap=64, max_nacks=4)
        engine = ChaosEngine(config, system=None)
        delays = [engine.nack_delay("read", 0, 0x40) for _ in range(5)]
        assert delays == [8, 16, 32, 64, 0]
        # the episode counter resets after admission
        assert engine.nack_delay("read", 0, 0x40) == 8

    def test_independent_episodes_per_line(self):
        config = ChaosConfig(nack_prob=1.0, nack_backoff=8,
                             nack_backoff_cap=64, max_nacks=4)
        engine = ChaosEngine(config, system=None)
        assert engine.nack_delay("read", 0, 0x40) == 8
        assert engine.nack_delay("read", 0, 0x80) == 8
        assert engine.nack_delay("write", 0, 0x40) == 8


class TestMutationTeeth:
    def test_evict_pinned_mutant_is_caught(self):
        """The deliberate bug — forced evictions target *pinned* lines —
        must trip the sanitizer's pin-safety invariant.  This is the
        campaign's self-test: it proves a green chaos run means the
        checker could have seen a violation, not that it looked away."""
        config = dataclasses.replace(
            FENCE_EP, sanitize=True,
            chaos=ChaosConfig(seed=0, evict_interval=5, msg_jitter=0,
                              msg_jitter_prob=0.0, nack_prob=0.0,
                              mutate="evict-pinned"))
        with pytest.raises(InvariantViolation) as excinfo:
            run_simulation(config, small_workload())
        assert excinfo.value.invariant == "pin-safety"


class TestCampaign:
    def test_small_campaign_passes(self):
        report = run_campaign(["mcf_r"], ["unsafe", "fence-ep"], seeds=2,
                              instructions=500)
        assert report["passed"]
        assert not report["failures"]
        assert report["self_test"]["detected"]
        assert report["checkpoint_check"]["identical"]
        for cell in report["cells"]:
            assert not cell["divergences"]
            assert not cell["violations"]
            assert all(run["ok"] and run["faults_injected"] > 0
                       for run in cell["seed_runs"])


class TestDiagnosticDump:
    def test_deadlock_error_carries_structured_dump(self):
        # thread 0 waits at a barrier thread 1 never reaches — the
        # detector trips and must attach a postmortem dump
        t0 = Trace([MicroOp(0, OpClass.BARRIER, barrier_id=0)], "t0")
        t1 = Trace([MicroOp(0, OpClass.INT_ALU)], "t1")
        hung = Workload([t0, t1], name="hung")
        config = dataclasses.replace(SystemConfig(num_cores=2),
                                     deadlock_cycles=300)
        with pytest.raises(DeadlockError) as excinfo:
            System(config, hung).run()
        dump = excinfo.value.dump
        assert dump is not None
        assert dump["cycle"] > 0
        assert len(dump["cores"]) == 2
        for core_state in dump["cores"]:
            assert "rob_head" in core_state
            assert "oldest_load" in core_state
            assert "pinned_total" in core_state
        assert isinstance(dump["pending_events"], list)
