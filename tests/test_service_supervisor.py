"""Supervisor lifecycle: idempotent submission, journal replay, the
degradation ladder, and drain semantics — all in-process (the
subprocess kill/restart campaign lives in ``test_service_crash.py``).
"""

import time

import pytest

from repro.common.errors import (BadRequestError, DrainingError,
                                 JobNotFoundError, RejectingError)
from repro.service.jobs import JobSpec
from repro.service.journal import Journal
from repro.service.supervisor import DEGRADATION_LADDER, Supervisor

SPEC = JobSpec(workload="mcf_r", scheme="unsafe", instructions=300,
               threads=1)


def make_supervisor(tmp_path, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("fsync", False)
    kwargs.setdefault("heartbeat_s", 0.02)
    return Supervisor(str(tmp_path / "service"), **kwargs)


def wait_done(supervisor, job_id, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        doc = supervisor.status(job_id)
        if doc["status"] in ("done", "failed"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id[:16]} still "
                         f"{doc['status']} after {timeout_s}s")


def test_submit_runs_to_done(tmp_path):
    supervisor = make_supervisor(tmp_path)
    try:
        supervisor.start()
        doc = supervisor.submit(SPEC)
        assert doc["status"] in ("queued", "running")
        done = wait_done(supervisor, doc["job"])
        assert done["status"] == "done"
        assert done["cycles"] > 0
        result = supervisor.result_doc(doc["job"])
        assert result is not None
        assert result["cycles"] == done["cycles"]
        assert supervisor.counters["completed"] == 1
    finally:
        supervisor.drain(wait=True, timeout_s=10.0)
        supervisor.close()


def test_resubmission_is_idempotent_with_zero_resimulation(tmp_path):
    supervisor = make_supervisor(tmp_path)
    try:
        supervisor.start()
        job_id = supervisor.submit(SPEC)["job"]
        wait_done(supervisor, job_id)
        simulated = supervisor.counters["executor_simulated"]
        again = supervisor.submit(SPEC)
        assert again["job"] == job_id
        assert again["status"] == "done"
        assert supervisor.counters["idempotent_hits"] == 1
        assert supervisor.counters["executor_simulated"] == simulated
    finally:
        supervisor.drain(wait=True, timeout_s=10.0)
        supervisor.close()


def test_submit_while_queued_deduplicates(tmp_path):
    supervisor = make_supervisor(tmp_path)  # never started: stays queued
    try:
        first = supervisor.submit(SPEC)
        assert first["status"] == "queued"
        second = supervisor.submit(SPEC)
        assert second["job"] == first["job"]
        assert supervisor.counters["deduplicated"] == 1
        assert len(supervisor.queue) == 1
    finally:
        supervisor.close()


def test_bad_spec_rejected_before_journaling(tmp_path):
    supervisor = make_supervisor(tmp_path)
    try:
        with pytest.raises(BadRequestError):
            supervisor.submit(JobSpec(workload="nosuch_r"))
        with pytest.raises(BadRequestError):
            supervisor.submit(JobSpec(workload="mcf_r",
                                      chaos={"bogus_knob": 1}))
        assert supervisor.counters["submitted"] == 0
        with pytest.raises(JobNotFoundError):
            supervisor.status("not-a-job")
    finally:
        supervisor.close()


def test_draining_refuses_submission(tmp_path):
    supervisor = make_supervisor(tmp_path)
    try:
        supervisor.start()
        supervisor.drain(wait=True, timeout_s=10.0)
        with pytest.raises(DrainingError) as excinfo:
            supervisor.submit(SPEC)
        assert excinfo.value.retry_after_s is not None
    finally:
        supervisor.close()


def test_journal_replay_resumes_queued_jobs(tmp_path):
    # incarnation 1: accept the job but die before running it
    first = make_supervisor(tmp_path)
    job_id = first.submit(SPEC)["job"]
    first.close()  # no drain: simulates an abrupt death

    # incarnation 2: replay must re-queue it, then run it to done
    second = make_supervisor(tmp_path)
    try:
        assert second.counters["replayed_jobs"] == 1
        assert second.status(job_id)["status"] == "queued"
        second.start()
        assert wait_done(second, job_id)["status"] == "done"
    finally:
        second.drain(wait=True, timeout_s=10.0)
        second.close()

    # incarnation 3: the finished job survives as done; resubmission is
    # an idempotent hit with zero simulation
    third = make_supervisor(tmp_path)
    try:
        assert third.status(job_id)["status"] == "done"
        doc = third.submit(SPEC)
        assert doc["status"] == "done"
        assert third.counters["executor_simulated"] == 0
        assert third.result_doc(job_id)["cycles"] == doc["cycles"]
    finally:
        third.close()


def test_recover_compacts_journal_to_snapshots(tmp_path):
    first = make_supervisor(tmp_path)
    first.submit(SPEC)
    first.close()
    second = make_supervisor(tmp_path)
    second.close()
    records = Journal(str(tmp_path / "service" / "journal.jsonl"),
                      fsync=False).replay()
    assert records, "recovery must leave a compacted journal"
    assert all(r["type"] == "snapshot" for r in records)


def test_degradation_ladder_walks_down_and_back(tmp_path):
    supervisor = make_supervisor(tmp_path, jobs=4, degrade_after=2,
                                 recover_after=2)
    try:
        assert supervisor.level == "full"
        assert supervisor._level_jobs() == 4
        for expected in ("reduced", "serial", "reject"):
            supervisor._note_failure("timeout")
            supervisor._note_failure("timeout")
            assert supervisor.level == expected
        assert supervisor.level == DEGRADATION_LADDER[-1]
        assert supervisor._level_jobs() == 0
        assert supervisor.counters["degradations"] == 3
        with pytest.raises(RejectingError):
            supervisor.submit(SPEC)
        # consecutive successes climb back one rung at a time
        supervisor._note_success()
        supervisor._note_success()
        assert supervisor.level == "serial"
        assert supervisor._level_jobs() == 1
        supervisor._note_success()
        supervisor._note_success()
        assert supervisor.level == "reduced"
        assert supervisor._level_jobs() == 2
        assert supervisor.counters["recoveries"] == 2
        # a lone failure resets the success streak but does not degrade
        supervisor._note_failure("error")
        supervisor._note_success()
        assert supervisor.level == "reduced"
    finally:
        supervisor.close()


def test_warm_cache_satisfies_submission_without_worker(tmp_path):
    from repro.sim.runner import ExperimentCache
    # a prior batch run shared this cache directory
    cache = ExperimentCache(
        cache_dir=str(tmp_path / "service" / "cache"))
    config, workload = SPEC.resolve()
    expected = cache.run(config, workload)

    supervisor = make_supervisor(tmp_path)  # worker never started
    try:
        doc = supervisor.submit(SPEC)
        assert doc["status"] == "done"
        assert doc["cycles"] == expected.cycles
        assert supervisor.counters["idempotent_hits"] == 1
    finally:
        supervisor.close()


def test_stats_shape(tmp_path):
    supervisor = make_supervisor(tmp_path)
    try:
        supervisor.submit(SPEC)
        stats = supervisor.stats()
        assert stats["level"] == "full"
        assert stats["draining"] is False
        assert stats["jobs_by_status"] == {"queued": 1}
        assert stats["queue_depth"] == 1
        assert stats["counters"]["submitted"] == 1
    finally:
        supervisor.close()
