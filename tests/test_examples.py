"""The example scripts must run end-to-end (small scales)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "leela_r", "1000")
        assert "fence + Early Pinning" in out
        assert "unsafe (no defense)" in out

    def test_quickstart_rejects_unknown_benchmark(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py"), "nope"],
            capture_output=True, text=True)
        assert result.returncode != 0

    def test_mcv_attack_window(self):
        out = run_example("mcv_attack_window.py")
        assert "MCV squashes" in out
        lines = [line for line in out.splitlines() if line.startswith(
            ("unsafe", "fence-comp"))]
        # the unsafe row must show a nonzero squash count, the defended
        # rows zero
        unsafe_row = next(line for line in lines
                          if line.startswith("unsafe"))
        assert int(unsafe_row.split()[2]) > 0
        for line in lines:
            if line.startswith("fence-comp"):
                squashes = int(line.replace("fence-comp + EP",
                                            "fence-ep").split()[2])
                assert squashes == 0

    def test_parallel_sweep(self):
        out = run_example("parallel_sweep.py", "300")
        assert "fft" in out and "x264" in out

    def test_cst_tuning(self):
        out = run_example("cst_tuning.py", "leela_r")
        assert "paper" in out and "infinite" in out

    def test_invisible_speculation(self):
        out = run_example("invisible_speculation.py", "leela_r")
        assert "validations" in out
        assert "comp + EP" in out
