"""The job service's write-ahead journal: durability contracts.

* every record is checksummed; decode rejects tampering;
* a torn FINAL line (crash mid-append) is tolerated; the same damage
  anywhere earlier is corruption and raises ``JournalError``;
* ``reduce_records`` folds the transition stream into per-job state
  (queued -> running -> done/failed, requeued -> queued + resume);
* ``compact`` atomically rewrites the journal as snapshots that reduce
  to the identical state.
"""

import json

import pytest

from repro.common.errors import JournalError
from repro.service.journal import (JOURNAL_FORMAT_VERSION, Journal,
                                   decode_record, encode_record,
                                   reduce_records)

SPEC = {"workload": "mcf_r", "scheme": "unsafe", "instructions": 300,
        "threads": 1, "sanitize": False, "priority": 5}


def test_record_roundtrip():
    line = encode_record(3, "submitted", "abc123",
                         {"spec": SPEC, "priority": 5})
    record = decode_record(line)
    assert record["seq"] == 3
    assert record["type"] == "submitted"
    assert record["job"] == "abc123"
    assert record["data"]["priority"] == 5
    assert record["v"] == JOURNAL_FORMAT_VERSION


def test_decode_rejects_tampering():
    line = encode_record(1, "done", "abc123", {"cycles": 100})
    tampered = line.replace('"cycles": 100', '"cycles": 999')
    with pytest.raises(JournalError, match="checksum"):
        decode_record(tampered)
    with pytest.raises(JournalError, match="undecodable"):
        decode_record(line[: len(line) // 2])
    with pytest.raises(JournalError):
        decode_record(json.dumps({"v": 99, "type": "done", "seq": 1,
                                  "job": "x", "data": {}, "sum": "0"}))


def test_encode_rejects_unknown_type():
    with pytest.raises(ValueError):
        encode_record(1, "vanished", "abc123")


def test_append_replay_roundtrip(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = Journal(path, fsync=False)
    journal.append("submitted", "job-a", {"spec": SPEC, "priority": 5})
    journal.append("running", "job-a", {"attempt": 1})
    journal.append("done", "job-a", {"cycles": 1234})
    journal.close()

    fresh = Journal(path, fsync=False)
    records = fresh.replay()
    assert [r["type"] for r in records] == ["submitted", "running",
                                            "done"]
    # replay fast-forwards the sequence so new appends keep total order
    assert fresh.append("submitted", "job-b", {"spec": SPEC}) == 4


def test_replay_tolerates_torn_final_line(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = Journal(path, fsync=False)
    journal.append("submitted", "job-a", {"spec": SPEC})
    journal.append("running", "job-a", {"attempt": 1})
    journal.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"data": {}, "job": "job-a", "se')  # crash mid-write

    records = Journal(path, fsync=False).replay()
    assert [r["type"] for r in records] == ["submitted", "running"]


def test_replay_rejects_mid_file_corruption(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = Journal(path, fsync=False)
    journal.append("submitted", "job-a", {"spec": SPEC})
    journal.append("done", "job-a", {"cycles": 9})
    journal.close()
    lines = open(path, encoding="utf-8").readlines()
    lines[0] = lines[0].replace("submitted", "snapshot")  # bad checksum
    with open(path, "w", encoding="utf-8") as fh:
        fh.writelines(lines)

    with pytest.raises(JournalError, match="line 1"):
        Journal(path, fsync=False).replay()


def test_reduce_records_state_machine():
    journal_lines = [
        encode_record(1, "submitted", "a", {"spec": SPEC, "priority": 5}),
        encode_record(2, "submitted", "a", {"spec": SPEC, "priority": 5}),
        encode_record(3, "running", "a", {"attempt": 1}),
        encode_record(4, "requeued", "a", {"checkpoint_cycle": 500}),
        encode_record(5, "running", "a", {"attempt": 2}),
        encode_record(6, "done", "a", {"cycles": 999}),
        encode_record(7, "submitted", "b", {"spec": SPEC, "priority": 0}),
        encode_record(8, "running", "b", {"attempt": 1}),
        encode_record(9, "failed", "b", {"kind": "timeout",
                                         "message": "too slow"}),
        encode_record(10, "submitted", "c", {"spec": SPEC,
                                             "priority": 10}),
    ]
    state = reduce_records([decode_record(l) for l in journal_lines])
    assert state["a"]["status"] == "done"
    assert state["a"]["cycles"] == 999
    assert state["a"]["attempts"] == 2
    assert state["a"]["resume"] is False
    assert state["b"]["status"] == "failed"
    assert state["b"]["failure"]["kind"] == "timeout"
    assert state["c"] == {"status": "queued", "spec": SPEC,
                          "priority": 10, "attempts": 0, "resume": False}


def test_reduce_records_requeued_keeps_resume():
    records = [
        decode_record(encode_record(1, "submitted", "a",
                                    {"spec": SPEC, "priority": 5})),
        decode_record(encode_record(2, "running", "a", {"attempt": 1})),
        decode_record(encode_record(3, "requeued", "a",
                                    {"checkpoint_cycle": 321})),
    ]
    state = reduce_records(records)
    assert state["a"]["status"] == "queued"
    assert state["a"]["resume"] is True
    assert state["a"]["checkpoint_cycle"] == 321


def test_reduce_records_rejects_orphan_transition():
    records = [decode_record(encode_record(1, "running", "ghost",
                                           {"attempt": 1}))]
    with pytest.raises(JournalError, match="unknown job"):
        reduce_records(records)


def test_compact_snapshots_preserve_state(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = Journal(path, fsync=False)
    journal.append("submitted", "a", {"spec": SPEC, "priority": 5})
    journal.append("running", "a", {"attempt": 1})
    journal.append("done", "a", {"cycles": 77})
    journal.append("submitted", "b", {"spec": SPEC, "priority": 0})
    state = reduce_records(journal.replay())
    assert journal.appends_since_compact == 4

    journal.compact(state)
    assert journal.appends_since_compact == 0
    records = Journal(path, fsync=False).replay()
    assert all(r["type"] == "snapshot" for r in records)
    assert reduce_records(records) == state
    # post-compaction appends still replay on top of the snapshots
    journal.append("running", "b", {"attempt": 1})
    journal.close()
    after = reduce_records(Journal(path, fsync=False).replay())
    assert after["b"]["status"] == "running"
    assert after["a"]["status"] == "done"
