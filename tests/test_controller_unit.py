"""PinnedLoadsController unit tests against a minimal fake core.

These isolate the §5 pinning rules from pipeline timing: program-order
pinning, the oldest-load exemption, the write-buffer check, CPT blocking,
LQ-ID wraparound draining, and Late Pinning's pin-on-arrival handshake.
"""

import pytest

from repro.common.params import (CoreParams, PinnedLoadsParams, PinningMode,
                                 SystemConfig, ThreatModel)
from repro.core.lsq import LoadQueue, StoreQueue
from repro.core.rob import ROBEntry
from repro.isa.uops import MicroOp, OpClass
from repro.mem.writebuffer import WriteBuffer
from repro.pinning.controller import PinnedLoadsController
from repro.security.threat import VPState


class FakeMem:
    def l1_set_of(self, line):
        return line & 63

    def slice_and_set_of(self, line):
        return (line % 8, line & 2047)


class FakeCore:
    """Just enough of the Core surface for the controller."""

    def __init__(self, mode, **pin_kw):
        self.config = SystemConfig(
            core=CoreParams(write_buffer_entries=4),
            pinning=PinnedLoadsParams(mode=mode, **pin_kw))
        self.lq = LoadQueue(16)
        self.sq = StoreQueue(16)
        self.write_buffer = WriteBuffer(4)
        self.vp_state = VPState()
        self.mem = FakeMem()
        self.vp_notes = []
        self.issue_requests = []

    def note_vp_reached(self, entry):
        if entry.vp_cycle is None:
            entry.vp_cycle = 1
            self.vp_notes.append(entry.index)

    def issue_load_for_pinning(self, entry):
        self.issue_requests.append(entry.index)
        entry.outstanding = True
        self.note_vp_reached(entry)


def make_load(core, controller, index, line, addr_ready=True,
              performed=False):
    uop = MicroOp(index, OpClass.LOAD, addr=line * 64)
    entry = ROBEntry(uop, 0, 0)
    entry.addr_ready = addr_ready
    entry.performed = performed
    core.lq.allocate(entry)
    core.vp_state.unretired_loads.add(index)
    controller.on_load_dispatch(entry)
    return entry


class TestProgramOrderPinning:
    def test_oldest_load_exempt_then_chain_pins(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        first = make_load(core, ctl, 0, line=10)
        second = make_load(core, ctl, 1, line=20)
        ctl.tick()
        assert first.mcv_safe and not first.pinned   # exemption, no pin
        assert second.mcv_safe and second.pinned
        assert ctl.stats["oldest_exemptions"] == 1
        assert ctl.stats["pins"] == 1

    def test_chain_stops_at_unready_load(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        make_load(core, ctl, 0, line=10)
        blocked = make_load(core, ctl, 1, line=20, addr_ready=False)
        younger = make_load(core, ctl, 2, line=30)
        ctl.tick()
        assert not blocked.mcv_safe
        assert not younger.mcv_safe    # strict program order

    def test_unresolved_older_branch_blocks_pinning(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        load = make_load(core, ctl, 5, line=10)
        core.vp_state.unresolved_branches.add(2)
        ctl.tick()
        assert not load.mcv_safe
        core.vp_state.unresolved_branches.discard(2)
        ctl.tick()
        assert load.mcv_safe

    def test_serializing_op_blocks_younger_pins(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        core.vp_state.serializing.add(3)
        load = make_load(core, ctl, 5, line=10)
        ctl.tick()
        assert not load.mcv_safe
        assert ctl.stats["pin_denied_serializing"] >= 1

    def test_forwarded_load_trivially_safe(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        load = make_load(core, ctl, 0, line=10, performed=True)
        load.forwarded = True
        younger = make_load(core, ctl, 1, line=20)
        ctl.tick()
        assert load.mcv_safe and not load.pinned
        assert younger.mcv_safe


class TestWriteBufferCheck:
    def _store(self, core, index):
        uop = MicroOp(index, OpClass.STORE, addr=index * 64)
        entry = ROBEntry(uop, 0, 0)
        core.sq.allocate(entry)
        return entry

    def test_too_many_older_stores_deny_pinning(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        make_load(core, ctl, 0, line=99)    # oldest: exempt
        for i in range(1, 6):
            self._store(core, i)            # 5 stores > 4 WB entries
        load = make_load(core, ctl, 6, line=10)
        ctl.tick()
        assert not load.pinned
        assert ctl.stats["pin_denied_wb"] >= 1

    def test_wb_occupancy_counts_too(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        make_load(core, ctl, 0, line=99)
        for line in range(3):
            core.write_buffer.push(line)    # 3 in WB
        for i in range(1, 3):
            self._store(core, i)            # + 2 in SQ = 5 > 4
        load = make_load(core, ctl, 6, line=10)
        ctl.tick()
        assert not load.pinned


class TestCPTInteraction:
    def test_cpt_line_cannot_be_pinned(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        make_load(core, ctl, 0, line=99)
        load = make_load(core, ctl, 1, line=10)
        ctl.cpt_insert(10)
        ctl.tick()
        assert not load.pinned
        assert ctl.stats["pin_denied_cpt"] >= 1
        ctl.cpt_clear(10)
        ctl.tick()
        assert load.pinned

    def test_cpt_overflow_blocks_all_pinning(self):
        core = FakeCore(PinningMode.EARLY, cpt_entries=1)
        ctl = PinnedLoadsController(core)
        ctl.cpt_insert(50)
        ctl.cpt_insert(60)    # overflow: refuse + block
        make_load(core, ctl, 0, line=99)
        load = make_load(core, ctl, 1, line=10)
        ctl.tick()
        assert not load.pinned
        assert ctl.stats["pin_denied_cpt_blocked"] >= 1


class TestLatePinning:
    def test_lp_authorizes_issue_then_pins_on_arrival(self):
        core = FakeCore(PinningMode.LATE)
        ctl = PinnedLoadsController(core)
        make_load(core, ctl, 0, line=99)           # oldest: exempt
        load = make_load(core, ctl, 1, line=10)
        ctl.tick()
        assert core.issue_requests == [1]
        assert not load.pinned                      # not until data returns
        assert ctl.lp_data_arrived(load)
        assert load.pinned and load.mcv_safe

    def test_lp_pin_deferred_when_cpt_holds_line(self):
        core = FakeCore(PinningMode.LATE)
        ctl = PinnedLoadsController(core)
        make_load(core, ctl, 0, line=99)
        load = make_load(core, ctl, 1, line=10)
        ctl.tick()
        ctl.cpt_insert(10)                          # Inv* raced the data
        assert not ctl.lp_data_arrived(load)
        assert not load.pinned
        ctl.cpt_clear(10)
        assert ctl.lp_data_arrived(load)

    def test_lp_already_performed_load_pins_directly(self):
        core = FakeCore(PinningMode.LATE)
        ctl = PinnedLoadsController(core)
        make_load(core, ctl, 0, line=99)
        load = make_load(core, ctl, 1, line=10, performed=True)
        ctl.tick()
        assert load.pinned
        assert not core.issue_requests or core.issue_requests == []


class TestWraparound:
    def test_wraparound_drains_then_recovers(self):
        core = FakeCore(PinningMode.EARLY, lq_id_tag_bits=2)   # ids 0..3
        ctl = PinnedLoadsController(core)
        loads = [make_load(core, ctl, i, line=10 + i) for i in range(4)]
        ctl.tick()
        pinned_now = [l for l in loads if l.pinned]
        assert pinned_now
        # the 5th dispatch wraps the 2-bit tag: draining begins
        extra = make_load(core, ctl, 4, line=50)
        assert ctl.stats["lq_id_wraparounds"] == 1
        ctl.tick()
        assert not extra.pinned
        # retire everything: drain completes, pinning resumes
        for load in loads:
            core.lq.release_head(load)
            core.vp_state.unretired_loads.discard(load.index)
            ctl.on_load_retire(load)
        ctl.tick()
        assert extra.mcv_safe

    def test_unpin_on_retire_and_counts(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        make_load(core, ctl, 0, line=99)
        load = make_load(core, ctl, 1, line=10)
        ctl.tick()
        assert ctl.has_pinned(10)
        core.lq.release_head(core.lq.oldest())
        core.vp_state.unretired_loads.discard(0)
        core.lq.release_head(load)
        core.vp_state.unretired_loads.discard(1)
        ctl.on_load_retire(load)
        assert not ctl.has_pinned(10)
        assert ctl.pinned_total == 0

    def test_same_line_pinned_twice_refcounts(self):
        core = FakeCore(PinningMode.EARLY)
        ctl = PinnedLoadsController(core)
        make_load(core, ctl, 0, line=99)
        a = make_load(core, ctl, 1, line=10)
        b = make_load(core, ctl, 2, line=10)
        ctl.tick()
        assert a.pinned and b.pinned
        ctl.on_load_retire(a)
        assert ctl.has_pinned(10)      # b still pins the line
        ctl.on_load_retire(b)
        assert not ctl.has_pinned(10)
