"""Defense schemes: how each gates pre-VP load issue (Table 2)."""

import pytest

from repro.common.params import (CoreParams, DefenseKind, PinningMode,
                                 SystemConfig, ThreatModel)
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.sim.runner import run_simulation

BASE = SystemConfig(l1_prefetch=False)


def alu(i, deps=()):
    return MicroOp(i, OpClass.INT_ALU, deps=deps)


def fp(i, deps=()):
    return MicroOp(i, OpClass.FP_ALU, deps=deps)


def load(i, addr, deps=()):
    return MicroOp(i, OpClass.LOAD, addr=addr, deps=deps)


def branch(i, deps=(), mispredicted=False):
    return MicroOp(i, OpClass.BRANCH, deps=deps, mispredicted=mispredicted)


def run(uops, defense, threat=ThreatModel.MCV, warm=True):
    config = BASE.with_defense(defense, threat)
    return run_simulation(config, Workload([Trace(uops)], name="t"),
                          warm=warm)


def speculative_window_trace():
    """A slow branch followed by independent loads: the paradigmatic
    speculative-execution window.  Each line is touched up front so the
    warm-up pass makes the speculative loads L1 hits."""
    uops = [load(k, 0x40 * (k + 1)) for k in range(4)]        # warm touches
    chain_start = 4
    uops += [fp(chain_start)]
    uops += [fp(i, deps=(i - 1,))
             for i in range(chain_start + 1, chain_start + 10)]
    branch_index = chain_start + 10
    uops += [branch(branch_index, deps=(branch_index - 1,))]
    uops += [load(branch_index + 1 + k, 0x40 * (k + 1)) for k in range(4)]
    return uops


class TestFence:
    def test_fence_delays_loads_past_branch_resolution(self):
        uops = speculative_window_trace()
        unsafe = run(uops, DefenseKind.UNSAFE)
        fence = run(uops, DefenseKind.FENCE, ThreatModel.CTRL)
        assert fence.cycles > unsafe.cycles

    def test_comprehensive_serializes_loads(self):
        # under Comp a load must be the oldest load to reach its VP, so
        # loads issue one at a time: cost grows with load count
        loads = [load(i, 0x40 * i) for i in range(12)]
        fence = run(loads, DefenseKind.FENCE)
        unsafe = run(loads, DefenseKind.UNSAFE)
        assert fence.cycles > unsafe.cycles * 1.5

    def test_threat_levels_are_monotone(self):
        uops = speculative_window_trace()
        cycles = [run(uops, DefenseKind.FENCE, level).cycles
                  for level in (ThreatModel.CTRL, ThreatModel.ALIAS,
                                ThreatModel.EXCEPT, ThreatModel.MCV)]
        assert cycles == sorted(cycles)


class TestDelayOnMiss:
    def test_hits_execute_speculatively(self):
        uops = speculative_window_trace()
        dom = run(uops, DefenseKind.DOM)      # warm: loads hit L1
        fence = run(uops, DefenseKind.FENCE)
        assert dom.cycles < fence.cycles

    def test_misses_stall_like_fence(self):
        uops = speculative_window_trace()
        dom = run(uops, DefenseKind.DOM, warm=False)     # loads miss
        fence = run(uops, DefenseKind.FENCE, warm=False)
        assert dom.cycles == pytest.approx(fence.cycles, rel=0.1)


class TestSTT:
    def test_untainted_loads_execute_speculatively(self):
        uops = speculative_window_trace()
        stt = run(uops, DefenseKind.STT)
        fence = run(uops, DefenseKind.FENCE)
        assert stt.cycles < fence.cycles

    def test_tainted_address_load_stalls(self):
        """A pointer-chase: the second load's address comes from the first
        (speculative) load, so STT must delay it until the producer's VP."""
        uops = [load(0, 0x40), load(1, 0x80)]          # warm touches
        uops += [fp(2)] + [fp(i, deps=(i - 1,)) for i in range(3, 12)]
        uops += [branch(12, deps=(11,)),
                 load(13, 0x40),
                 load(14, 0x80, deps=(13,))]           # tainted address
        unsafe = run(uops, DefenseKind.UNSAFE)
        stt = run(uops, DefenseKind.STT)
        assert stt.cycles > unsafe.cycles

    def test_stt_cheaper_than_dom_on_pointer_free_code(self):
        uops = speculative_window_trace()
        stt = run(uops, DefenseKind.STT, warm=False)
        dom = run(uops, DefenseKind.DOM, warm=False)
        assert stt.cycles <= dom.cycles


class TestUnsafe:
    def test_unsafe_matches_across_threat_models(self):
        """The Unsafe baseline ignores the threat model entirely."""
        uops = speculative_window_trace()
        comp = run(uops, DefenseKind.UNSAFE, ThreatModel.MCV)
        spectre = run(uops, DefenseKind.UNSAFE, ThreatModel.CTRL)
        assert comp.cycles == spectre.cycles

    def test_scheme_overhead_ordering(self):
        """Figure 7's global ordering: Fence >= DOM >= STT >= Unsafe."""
        uops = speculative_window_trace() * 1
        results = {kind: run(uops, kind).cycles
                   for kind in (DefenseKind.UNSAFE, DefenseKind.STT,
                                DefenseKind.DOM, DefenseKind.FENCE)}
        assert results[DefenseKind.FENCE] >= results[DefenseKind.DOM]
        assert results[DefenseKind.DOM] >= results[DefenseKind.STT] * 0.95
        assert results[DefenseKind.STT] >= results[DefenseKind.UNSAFE]
