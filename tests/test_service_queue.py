"""Admission queue: priority order, dedup, backpressure, and the
fair-share / per-tenant quota layer added for the federated fabric."""

import threading

import pytest

from repro.common.errors import QueueFullError, QuotaExceededError
from repro.service.queue import DEFAULT_TENANT, AdmissionQueue


def test_priority_order_with_fifo_within_class():
    queue = AdmissionQueue(capacity=8)
    queue.push("bulk-1", 10)
    queue.push("bulk-2", 10)
    queue.push("interactive", 0)
    queue.push("default", 5)
    order = [queue.pop(timeout_s=0) for _ in range(4)]
    assert order == ["interactive", "default", "bulk-1", "bulk-2"]


def test_push_deduplicates_queued_ids():
    queue = AdmissionQueue(capacity=8)
    assert queue.push("job", 5) is True
    assert queue.push("job", 0) is False  # already queued, even if
    assert len(queue) == 1                # resubmitted more urgently
    assert "job" in queue
    assert queue.pop(timeout_s=0) == "job"
    assert "job" not in queue
    # once popped, the id is admissible again (retry after failure)
    assert queue.push("job", 5) is True


def test_capacity_rejects_with_retry_after():
    queue = AdmissionQueue(capacity=2, job_seconds=lambda: 1.5)
    queue.push("a", 5)
    queue.push("b", 5)
    with pytest.raises(QueueFullError) as excinfo:
        queue.push("c", 5)
    err = excinfo.value
    assert err.http_status == 429
    assert err.code == "queue-full"
    # the hint scales with the backlog in front of the next slot
    assert err.retry_after_s == pytest.approx(2 * 1.5)
    assert "queue-full" in str(err.to_doc())
    # a slot freeing up makes the same push admissible
    queue.pop(timeout_s=0)
    assert queue.push("c", 5) is True


def test_pop_timeout_returns_none():
    queue = AdmissionQueue(capacity=2)
    assert queue.pop(timeout_s=0) is None
    assert queue.pop(timeout_s=0.01) is None


def test_pop_batch_drains_in_priority_order():
    queue = AdmissionQueue(capacity=8)
    for job_id, priority in (("c", 10), ("a", 0), ("b", 5)):
        queue.push(job_id, priority)
    assert queue.pop_batch(2) == ["a", "b"]
    assert queue.pop_batch(2) == ["c"]
    assert queue.pop_batch(2) == []


def test_snapshot_lists_drain_order():
    queue = AdmissionQueue(capacity=8)
    queue.push("bulk", 10)
    queue.push("urgent", 0)
    assert queue.snapshot() == [(0, "urgent"), (10, "bulk")]


def test_fair_share_alternates_between_tenants():
    """Equal-priority backlogs from two tenants drain round-robin, not
    first-come-takes-all — one tenant's bulk sweep cannot starve
    another's."""
    queue = AdmissionQueue(capacity=16)
    for index in range(3):
        queue.push(f"a{index}", 10, tenant="alice")
    for index in range(3):
        queue.push(f"b{index}", 10, tenant="bob")
    order = [queue.pop(timeout_s=0) for _ in range(6)]
    assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]


def test_priority_still_beats_fair_share():
    queue = AdmissionQueue(capacity=16)
    queue.push("bulk-a", 10, tenant="alice")
    queue.push("bulk-b", 10, tenant="bob")
    queue.push("urgent-b", 0, tenant="bob")
    assert queue.pop(timeout_s=0) == "urgent-b"


def test_single_tenant_keeps_exact_priority_fifo():
    # the pre-fabric contract: one tenant degenerates to (priority, seq)
    queue = AdmissionQueue(capacity=8)
    queue.push("bulk-1", 10)
    queue.push("interactive", 0)
    queue.push("bulk-2", 10)
    assert [queue.pop(timeout_s=0) for _ in range(3)] == \
        ["interactive", "bulk-1", "bulk-2"]


def test_tenant_quota_rejects_with_429():
    queue = AdmissionQueue(capacity=16, tenant_capacity=2,
                           job_seconds=lambda: 1.0)
    queue.push("a1", 5, tenant="alice")
    queue.push("a2", 5, tenant="alice")
    with pytest.raises(QuotaExceededError) as excinfo:
        queue.push("a3", 5, tenant="alice")
    err = excinfo.value
    assert err.http_status == 429
    assert err.code == "quota-exceeded"
    assert err.retry_after_s is not None
    # the quota is per tenant: another tenant is unaffected
    assert queue.push("b1", 5, tenant="bob") is True
    # and draining one of alice's jobs reopens her quota
    queue.pop(timeout_s=0)
    assert queue.push("a3", 5, tenant="alice") is True


def test_dedup_spans_tenants():
    # job identity is content-addressed; tenant is accounting only, so
    # the same id resubmitted under another tenant is still a dup
    queue = AdmissionQueue(capacity=8)
    assert queue.push("job", 5, tenant="alice") is True
    assert queue.push("job", 5, tenant="bob") is False
    assert len(queue) == 1


def test_depth_and_tenants_accounting():
    queue = AdmissionQueue(capacity=8)
    queue.push("a1", 5, tenant="alice")
    queue.push("b1", 5, tenant="bob")
    queue.push("plain", 5)
    assert queue.depth("alice") == 1
    assert queue.depth(DEFAULT_TENANT) == 1
    assert queue.tenants() == {"alice": 1, "bob": 1, DEFAULT_TENANT: 1}
    queue.pop(timeout_s=0)
    assert sum(queue.tenants().values()) == 2


def test_snapshot_merges_tenant_heaps_in_drain_order():
    queue = AdmissionQueue(capacity=8)
    queue.push("bulk", 10, tenant="alice")
    queue.push("urgent", 0, tenant="bob")
    assert queue.snapshot() == [(0, "urgent"), (10, "bulk")]


def test_wake_all_releases_blocked_pop():
    queue = AdmissionQueue(capacity=2)
    results = []

    def blocked_pop():
        results.append(queue.pop(timeout_s=5.0))

    thread = threading.Thread(target=blocked_pop)
    thread.start()
    queue.wake_all()
    thread.join(timeout=2.0)
    assert not thread.is_alive()
    assert results == [None]
