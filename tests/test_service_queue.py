"""Admission queue: priority order, dedup, and backpressure."""

import threading

import pytest

from repro.common.errors import QueueFullError
from repro.service.queue import AdmissionQueue


def test_priority_order_with_fifo_within_class():
    queue = AdmissionQueue(capacity=8)
    queue.push("bulk-1", 10)
    queue.push("bulk-2", 10)
    queue.push("interactive", 0)
    queue.push("default", 5)
    order = [queue.pop(timeout_s=0) for _ in range(4)]
    assert order == ["interactive", "default", "bulk-1", "bulk-2"]


def test_push_deduplicates_queued_ids():
    queue = AdmissionQueue(capacity=8)
    assert queue.push("job", 5) is True
    assert queue.push("job", 0) is False  # already queued, even if
    assert len(queue) == 1                # resubmitted more urgently
    assert "job" in queue
    assert queue.pop(timeout_s=0) == "job"
    assert "job" not in queue
    # once popped, the id is admissible again (retry after failure)
    assert queue.push("job", 5) is True


def test_capacity_rejects_with_retry_after():
    queue = AdmissionQueue(capacity=2, job_seconds=lambda: 1.5)
    queue.push("a", 5)
    queue.push("b", 5)
    with pytest.raises(QueueFullError) as excinfo:
        queue.push("c", 5)
    err = excinfo.value
    assert err.http_status == 429
    assert err.code == "queue-full"
    # the hint scales with the backlog in front of the next slot
    assert err.retry_after_s == pytest.approx(2 * 1.5)
    assert "queue-full" in str(err.to_doc())
    # a slot freeing up makes the same push admissible
    queue.pop(timeout_s=0)
    assert queue.push("c", 5) is True


def test_pop_timeout_returns_none():
    queue = AdmissionQueue(capacity=2)
    assert queue.pop(timeout_s=0) is None
    assert queue.pop(timeout_s=0.01) is None


def test_pop_batch_drains_in_priority_order():
    queue = AdmissionQueue(capacity=8)
    for job_id, priority in (("c", 10), ("a", 0), ("b", 5)):
        queue.push(job_id, priority)
    assert queue.pop_batch(2) == ["a", "b"]
    assert queue.pop_batch(2) == ["c"]
    assert queue.pop_batch(2) == []


def test_snapshot_lists_drain_order():
    queue = AdmissionQueue(capacity=8)
    queue.push("bulk", 10)
    queue.push("urgent", 0)
    assert queue.snapshot() == [(0, "urgent"), (10, "bulk")]


def test_wake_all_releases_blocked_pop():
    queue = AdmissionQueue(capacity=2)
    results = []

    def blocked_pop():
        results.append(queue.pop(timeout_s=5.0))

    thread = threading.Thread(target=blocked_pop)
    thread.start()
    queue.wake_all()
    thread.join(timeout=2.0)
    assert not thread.is_alive()
    assert results == [None]
