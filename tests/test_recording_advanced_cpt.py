"""The §6.1.2 L1-tag pin-recording design and the §6.3 advanced CPT."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (DefenseKind, PinnedLoadsParams, PinningMode,
                                 SystemConfig)
from repro.pinning.cpt import CannotPinTable
from repro.pinning.recording import L1TagPinRecord
from repro.sim.runner import run_simulation
from repro.workloads import parallel_workload, spec17_workload


class TestL1TagPinRecord:
    def test_first_pin_sets_l1_bit(self):
        record = L1TagPinRecord()
        record.on_pin(10, lq_id=1, line_in_l1=True)
        assert record.is_pinned(10)
        assert record.stats["l1_bits_set"] == 1
        assert record.stats["l1_bit_accesses"] == 1

    def test_pin_before_fill_uses_mshr_bit(self):
        """§6.1.2: Early Pinning may pin before the L1 has the line; the
        Pinned bit parks in the MSHR and is copied on fill."""
        record = L1TagPinRecord()
        record.on_pin(10, lq_id=1, line_in_l1=False)
        assert record.stats["mshr_bits_set"] == 1
        assert record.stats["l1_bit_accesses"] == 0
        record.on_fill(10)
        assert record.stats["mshr_bits_copied"] == 1
        assert record.stats["l1_bit_accesses"] == 1

    def test_ypl_passes_to_youngest_without_l1_access(self):
        record = L1TagPinRecord()
        record.on_pin(10, lq_id=1, line_in_l1=True)
        record.on_pin(10, lq_id=2, line_in_l1=True)
        assert record.ypl_holder(10) == 2
        assert record.stats["ypl_passes"] == 1
        assert record.stats["l1_bit_accesses"] == 1   # only the first pin

    def test_only_last_unpin_clears_the_bit(self):
        record = L1TagPinRecord()
        record.on_pin(10, lq_id=1, line_in_l1=True)
        record.on_pin(10, lq_id=2, line_in_l1=True)
        assert not record.on_unpin(10, lq_id=1)   # older load, not YPL
        assert record.is_pinned(10)
        assert record.on_unpin(10, lq_id=2)       # YPL holder clears
        assert not record.is_pinned(10)
        assert record.stats["l1_bits_cleared"] == 1

    def test_unpin_unknown_line_is_noop(self):
        record = L1TagPinRecord()
        assert not record.on_unpin(99, lq_id=1)

    def test_end_to_end_l1tag_mode_matches_lq_mode_semantics(self):
        """Both recording designs must produce identical timing: the
        record's location changes hardware cost, not behaviour."""
        workload = spec17_workload("bwaves_r", instructions=1200)
        results = {}
        for mode in ("lq", "l1tag"):
            config = SystemConfig(
                defense=DefenseKind.FENCE,
                pinning=PinnedLoadsParams(mode=PinningMode.EARLY,
                                          pin_record=mode))
            results[mode] = run_simulation(config, workload)
        assert results["lq"].cycles == results["l1tag"].cycles
        assert results["lq"].squash_summary() \
            == results["l1tag"].squash_summary()

    def test_l1tag_mode_counts_bit_traffic(self):
        workload = spec17_workload("bwaves_r", instructions=1200)
        config = SystemConfig(
            defense=DefenseKind.FENCE,
            pinning=PinnedLoadsParams(mode=PinningMode.EARLY,
                                      pin_record="l1tag"))
        system_result = run_simulation(config, workload)
        # the controller's record must have been exercised: accesses are
        # visible on the controller object via a fresh run
        from repro.sim.system import System
        system = System(config, workload)
        system.mem.warm(workload)
        system.run()
        record = system.cores[0].controller.l1_tag_record
        assert record is not None
        assert record.stats["l1_bit_accesses"] > 0
        assert record.pinned_line_count == 0      # all unpinned at the end

    def test_invalid_pin_record_rejected(self):
        with pytest.raises(ConfigError):
            PinnedLoadsParams(pin_record="bogus").validate()


class TestAdvancedCPT:
    def test_refused_writer_gets_reserved_slot(self):
        cpt = CannotPinTable(capacity=2, reservation_queue=True)
        cpt.insert(1, writer=5)
        cpt.insert(2, writer=6)
        assert not cpt.insert(3, writer=7)     # full: writer 7 queued
        assert cpt.stats["writers_queued"] == 1
        cpt.remove(1)                          # frees a slot -> reserved
        assert cpt.insert(3, writer=7)         # entitled writer succeeds
        assert cpt.stats["reservations_used"] == 1

    def test_reservation_is_fifo(self):
        cpt = CannotPinTable(capacity=1, reservation_queue=True)
        cpt.insert(1, writer=5)
        assert not cpt.insert(2, writer=6)
        assert not cpt.insert(3, writer=7)
        cpt.remove(1)                          # slot reserved for writer 6
        assert not cpt.insert(3, writer=7)     # writer 7 still waits
        assert cpt.insert(2, writer=6)

    def test_without_queue_refusals_are_unconditional(self):
        cpt = CannotPinTable(capacity=1, reservation_queue=False)
        cpt.insert(1, writer=5)
        assert not cpt.insert(2, writer=6)
        cpt.remove(1)
        assert cpt.insert(2, writer=6)         # plain capacity, no debt

    def test_duplicate_queued_writer_not_requeued(self):
        cpt = CannotPinTable(capacity=1, reservation_queue=True)
        cpt.insert(1, writer=5)
        cpt.insert(2, writer=6)
        cpt.insert(3, writer=6)
        assert cpt.stats["writers_queued"] == 1

    def test_end_to_end_with_reservation_queue(self):
        workload = parallel_workload("radiosity", num_threads=4,
                                     instructions_per_thread=500)
        config = SystemConfig(
            num_cores=4, defense=DefenseKind.DOM,
            pinning=PinnedLoadsParams(mode=PinningMode.EARLY,
                                      cpt_reservation_queue=True))
        result = run_simulation(config, workload)
        for core_id in range(4):
            assert result.core_stats[core_id]["retired"] == \
                len(workload.traces[core_id])
