"""The CLI and workload serialization."""

import json

import pytest

from repro.cli import main
from repro.isa.serialize import (load_workload, save_workload,
                                 uop_from_dict, uop_to_dict,
                                 workload_from_dict, workload_to_dict)
from repro.isa.uops import MicroOp, OpClass
from repro.sim.runner import run_simulation
from repro.common.params import SystemConfig
from repro.workloads import parallel_workload, spec17_workload


class TestCLI:
    def test_run_command(self, capsys):
        assert main(["run", "leela_r", "--instructions", "500",
                     "--defense", "fence", "--pinning", "ep"]) == 0
        out = capsys.readouterr().out
        assert "normalized CPI" in out
        assert "fence / comp / ep" in out

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "not_a_benchmark"])

    def test_run_rejects_bad_defense(self):
        with pytest.raises(SystemExit):
            main(["run", "leela_r", "--defense", "bogus"])

    def test_grid_command(self, capsys):
        assert main(["grid", "namd_r", "--instructions", "400"]) == 0
        out = capsys.readouterr().out
        for scheme in ("fence", "dom", "stt"):
            assert scheme in out
        assert "spectre" in out

    def test_breakdown_command(self, capsys):
        assert main(["breakdown", "namd_r", "--instructions", "400"]) == 0
        out = capsys.readouterr().out
        for condition in ("ctrl", "alias", "exception", "mcv", "total"):
            assert condition in out

    def test_parallel_workload_via_cli(self, capsys):
        assert main(["run", "fft", "--instructions", "200",
                     "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 thread(s)" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "mcf_r" in out and "raytrace" in out

    def test_hardware_command(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "l1_cst" in out and "dir_cst" in out


class TestUopRoundtrip:
    @pytest.mark.parametrize("uop", [
        MicroOp(0, OpClass.INT_ALU),
        MicroOp(3, OpClass.LOAD, deps=(1, 2), addr=0x1C0),
        MicroOp(5, OpClass.STORE, deps=(1,), data_deps=(4,), addr=0x200),
        MicroOp(2, OpClass.BRANCH, deps=(0,), mispredicted=True),
        MicroOp(7, OpClass.BARRIER, barrier_id=3),
        MicroOp(1, OpClass.ATOMIC, addr=0x5000),
        MicroOp(0, OpClass.FENCE),
    ])
    def test_roundtrip_preserves_fields(self, uop):
        restored = uop_from_dict(uop.index, uop_to_dict(uop))
        assert restored.opclass is uop.opclass
        assert restored.deps == uop.deps
        assert restored.data_deps == uop.data_deps
        assert restored.addr == uop.addr
        assert restored.mispredicted == uop.mispredicted
        assert restored.barrier_id == uop.barrier_id


class TestWorkloadSerialization:
    def test_roundtrip_through_file(self, tmp_path):
        workload = parallel_workload("fft", num_threads=2,
                                     instructions_per_thread=300)
        path = tmp_path / "fft.json"
        save_workload(workload, path)
        restored = load_workload(path)
        assert restored.name == workload.name
        assert restored.num_threads == 2
        assert restored.total_instructions == workload.total_instructions

    def test_restored_workload_simulates_identically(self, tmp_path):
        workload = spec17_workload("gcc_r", instructions=500)
        path = tmp_path / "gcc.json"
        save_workload(workload, path)
        restored = load_workload(path)
        original = run_simulation(SystemConfig(), workload)
        replayed = run_simulation(SystemConfig(), restored)
        assert original.cycles == replayed.cycles

    def test_version_check(self):
        workload = spec17_workload("gcc_r", instructions=10)
        data = workload_to_dict(workload)
        data["version"] = 99
        with pytest.raises(ValueError):
            workload_from_dict(data)

    def test_json_is_compact_schema(self):
        workload = spec17_workload("gcc_r", instructions=50)
        data = workload_to_dict(workload)
        text = json.dumps(data)
        parsed = json.loads(text)
        assert parsed["threads"][0]["uops"][0]["op"] in {
            cls.value for cls in OpClass}
