"""Crash tolerance, end to end: a real ``repro serve`` subprocess is
killed (``SIGKILL``) or drained (``SIGTERM``) mid-job, restarted on the
same state directory, and must

* replay the journal and resume exactly the unfinished jobs,
* produce results bit-identical to an uninterrupted in-process run
  (even when the resumed job continues from a rolling checkpoint),
* serve previously finished jobs from the store with zero
  re-simulation.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec
from repro.service.journal import Journal
from repro.sim.runner import run_simulation

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")

QUICK = JobSpec(workload="mcf_r", scheme="unsafe", instructions=400,
                threads=1)
#: Long enough (~2s of simulation) that a signal reliably lands while
#: the job is running.
LONG = JobSpec(workload="mcf_r", scheme="unsafe", instructions=60000,
               threads=1)


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_service(root, port, checkpoint_interval=20000):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", str(root),
         "--port", str(port), "--jobs", "1",
         "--checkpoint-interval", str(checkpoint_interval)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    client = ServiceClient(f"http://127.0.0.1:{port}", retries=40,
                           backoff_s=0.05, backoff_cap_s=0.5,
                           timeout_s=10.0)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return proc, client
        except (ConnectionError, OSError):
            if proc.poll() is not None:
                raise AssertionError(
                    f"repro serve exited early with {proc.returncode}")
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("service never became healthy")


def wait_running(client, job_id, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.job(job_id)["status"]
        if status == "running":
            return
        if status in ("done", "failed"):
            raise AssertionError(f"job finished ({status}) before the "
                                 f"signal could land; raise LONG")
        time.sleep(0.02)
    raise AssertionError("job never started running")


def stop(proc):
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=10)


@pytest.mark.slow
def test_kill9_restart_replays_bit_identical(tmp_path):
    root = tmp_path / "service"
    port = free_port()
    proc, client = start_service(root, port)
    try:
        quick_doc = client.run(QUICK, timeout_s=60.0).to_dict()
        long_id = client.submit(LONG)["job"]
        wait_running(client, long_id)
        proc.send_signal(signal.SIGKILL)  # no drain, no goodbye
        proc.wait(timeout=10)

        proc, client = start_service(root, port)
        stats = client.stats()
        assert stats["counters"]["replayed_jobs"] == 1
        served = client.wait(long_id, timeout_s=120.0)
        assert served["status"] == "done"

        # bit-identical to an uninterrupted in-process run, despite the
        # kill (and a possible resume from a rolling checkpoint)
        expected = run_simulation(*LONG.resolve()).to_dict()
        assert client.job(long_id)["result"] == expected

        # the pre-crash job survived in the store, byte for byte
        assert client.job(QUICK.job_id())["result"] == quick_doc

        # resubmitting finished work simulates nothing
        simulated = client.stats()["counters"]["executor_simulated"]
        assert client.submit(QUICK)["status"] == "done"
        assert client.submit(LONG)["status"] == "done"
        after = client.stats()["counters"]
        assert after["executor_simulated"] == simulated
        assert after["idempotent_hits"] >= 2
    finally:
        stop(proc)


@pytest.mark.slow
def test_sigterm_drain_checkpoints_and_resumes(tmp_path):
    root = tmp_path / "service"
    port = free_port()
    # small interval: several rolling checkpoints during LONG
    proc, client = start_service(root, port, checkpoint_interval=10000)
    try:
        long_id = client.submit(LONG)["job"]
        wait_running(client, long_id)
        time.sleep(0.4)  # let at least one checkpoint land
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0  # graceful exit

        # the drain journaled the in-flight job as requeued, carrying
        # the cycle of the checkpoint it paused at
        records = Journal(str(root / "journal.jsonl")).replay()
        requeued = [r for r in records
                    if r["type"] in ("requeued", "snapshot")
                    and r["job"] == long_id]
        assert requeued, "drain must leave a durable requeue record"
        entry = requeued[-1]["data"]
        assert entry.get("checkpoint_cycle", 0) > 0 \
            or entry.get("status") == "queued"

        proc, client = start_service(root, port,
                                     checkpoint_interval=10000)
        assert client.stats()["counters"]["replayed_jobs"] == 1
        client.wait(long_id, timeout_s=120.0)
        # the resumed run (checkpoint -> completion) must be
        # indistinguishable from one that was never interrupted
        expected = run_simulation(*LONG.resolve()).to_dict()
        assert client.job(long_id)["result"] == expected
    finally:
        stop(proc)
