"""Store federation: read-through peer fetch with checksum re-validation
and flock'd local fill — one shard's computed result satisfies another
shard's miss with zero re-simulation, and a lying peer is a miss."""

import json
import threading
import urllib.request

from repro.service.client import ServiceClient
from repro.service.fabric.store import fetch_payload, peer_fetcher
from repro.service.jobs import JobSpec
from repro.service.server import ServiceServer
from repro.service.supervisor import Supervisor
from repro.sim.executor import ResultStore, cache_key
from repro.sim.runner import run_simulation

SPEC = JobSpec(workload="mcf_r", scheme="unsafe", instructions=400,
               threads=1)


def make_service(tmp_path, name, peers=None):
    supervisor = Supervisor(str(tmp_path / name), jobs=1, fsync=False,
                            heartbeat_s=0.02, peers=peers)
    server = ServiceServer(("127.0.0.1", 0), supervisor)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    supervisor.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return supervisor, server, url


def shutdown(supervisor, server):
    server.shutdown()
    server.server_close()
    supervisor.drain(wait=True, timeout_s=10.0)
    supervisor.close()


class TestPeerReadThrough:
    def test_miss_fills_from_peer_and_serves_locally(self, tmp_path):
        """Shard A computes; shard B (peered to A) serves the same job
        with zero simulation, filling its local store on the way."""
        sup_a, srv_a, url_a = make_service(tmp_path, "a")
        try:
            result = ServiceClient(url_a).run(SPEC, timeout_s=60.0)
            sup_b, srv_b, url_b = make_service(tmp_path, "b",
                                               peers=[url_a])
            try:
                doc = ServiceClient(url_b).run(SPEC, timeout_s=60.0)
                assert doc.to_dict() == result.to_dict()  # bit-identical
                assert sup_b.counters["executor_simulated"] == 0
                assert sup_b.cache.store.peer_fills == 1
                # the fill is durable: a fresh store at B's root hits
                fresh = ResultStore(str(tmp_path / "b" / "cache"))
                job_id = SPEC.job_id()
                assert fresh.get(job_id).to_dict() == result.to_dict()
                assert sup_b.stats()["peer_fills"] == 1
            finally:
                shutdown(sup_b, srv_b)
        finally:
            shutdown(sup_a, srv_a)

    def test_store_endpoint_serves_validated_payload(self, tmp_path):
        sup, srv, url = make_service(tmp_path, "solo")
        try:
            ServiceClient(url).run(SPEC, timeout_s=60.0)
            job_id = SPEC.job_id()
            fetched = fetch_payload(url, job_id)
            expected = run_simulation(*SPEC.resolve())
            assert fetched.to_dict() == expected.to_dict()
            # unknown keys are a miss, not an error
            assert fetch_payload(url, "0" * 64) is None
        finally:
            shutdown(sup, srv)

    def test_peer_down_degrades_to_plain_miss(self, tmp_path):
        fetch = peer_fetcher(["http://127.0.0.1:9"], timeout_s=0.5)
        assert fetch("0" * 64) is None

    def test_corrupt_peer_payload_rejected(self, tmp_path, monkeypatch):
        """A peer serving a tampered result must read as a miss: the
        checksum re-validation is the federation trust boundary."""
        config, workload = SPEC.resolve()
        key = cache_key(config, workload)
        store = ResultStore(str(tmp_path / "store"))
        store.put(key, run_simulation(config, workload))
        with open(store._path(key), encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["result"]["cycles"] = 1  # tamper without re-checksum

        class _Resp:
            def read(self):
                return json.dumps(payload).encode()

            def __enter__(self):
                return self

            def __exit__(self, *_exc):
                return False

        from repro.service.fabric.store import fetch_payload as fetch
        monkeypatch.setattr(urllib.request, "urlopen",
                            lambda *_a, **_k: _Resp())
        assert fetch("http://peer", key) is None

    def test_payload_is_local_only(self, tmp_path):
        """``payload`` (the serving side) never consults peers — the
        structural guarantee against A->B->A fetch loops."""
        calls = []

        def nosy(key):
            calls.append(key)
            return None

        store = ResultStore(str(tmp_path / "store"), peer_fetch=nosy)
        assert store.payload("0" * 64) is None
        assert calls == []  # get() would have consulted the peer...
        assert store.get("0" * 64) is None
        assert calls == ["0" * 64]  # ...and does; payload() must not
