"""Coherence protocol, including the Pinned Loads extensions of §5.1:
invalidation deferral (Defer/Abort), starvation control (GetX*/Inv*/Clear
and CPT callbacks), eviction denial, and retry accounting (§9.1.3)."""

import pytest

from repro.common.addr import slice_of
from repro.common.events import EventQueue
from repro.common.params import CacheParams, SystemConfig
from repro.mem.cache import LineState
from repro.mem.coherence import CoherentMemory, CorePort


class RecordingPort(CorePort):
    """A stub core that records callbacks and exposes a pinned-line set."""

    def __init__(self):
        self.pinned = set()
        self.invalidations = []
        self.evictions = []
        self.cpt = set()
        self.cpt_inserts = []
        self.cpt_clears = []

    def has_pinned(self, line):
        return line in self.pinned

    def on_invalidation(self, line):
        self.invalidations.append(line)

    def on_line_evicted(self, line):
        self.evictions.append(line)

    def cpt_insert(self, line, writer=None):
        self.cpt.add(line)
        self.cpt_inserts.append((line, writer))

    def cpt_clear(self, line):
        self.cpt.discard(line)
        self.cpt_clears.append(line)


def make_memory(num_cores=2, l1_sets=4, l1_ways=2, llc_ways=4,
                prefetch=False):
    config = SystemConfig(
        num_cores=num_cores,
        l1d=CacheParams(size_bytes=l1_sets * l1_ways * 64, ways=l1_ways,
                        latency=2),
        llc_slice=CacheParams(size_bytes=4 * llc_ways * 64, ways=llc_ways,
                              latency=8),
        l1_prefetch=prefetch,
    )
    events = EventQueue()
    mem = CoherentMemory(config, events)
    ports = []
    for core_id in range(num_cores):
        port = RecordingPort()
        mem.attach_port(core_id, port)
        ports.append(port)
    return mem, events, ports


def settle(events, horizon=5000):
    while not events.empty:
        events.run_until(events.next_time())
        if events.now > horizon:
            raise AssertionError("events did not settle")


def do_load(mem, events, core, line):
    done = []
    mem.load(core, line, lambda cycle: done.append(cycle))
    settle(events)
    assert done, "load never completed"
    return done[0]


def do_store(mem, events, core, line):
    done = []
    mem.store(core, line, lambda cycle: done.append(cycle))
    settle(events)
    return done


class TestLoadPath:
    def test_miss_fills_l1(self):
        mem, events, _ = make_memory()
        do_load(mem, events, 0, line=5)
        assert mem.l1_hit(0, 5)

    def test_hit_is_faster_than_miss(self):
        mem, events, _ = make_memory()
        miss_latency = do_load(mem, events, 0, line=5)
        events2 = events.now
        hit_latency = do_load(mem, events, 0, line=5) - events2
        assert hit_latency < miss_latency

    def test_first_fill_is_exclusive(self):
        mem, events, _ = make_memory()
        do_load(mem, events, 0, line=5)
        assert mem.l1s[0].lookup(5) is LineState.EXCLUSIVE

    def test_second_reader_gets_shared_and_downgrades_owner(self):
        mem, events, _ = make_memory()
        do_load(mem, events, 0, line=5)
        do_load(mem, events, 1, line=5)
        assert mem.l1s[0].lookup(5) is LineState.SHARED
        assert mem.l1s[1].lookup(5) is LineState.SHARED

    def test_concurrent_misses_merge_in_mshr(self):
        mem, events, _ = make_memory()
        done = []
        mem.load(0, 9, lambda c: done.append("a"))
        mem.load(0, 9, lambda c: done.append("b"))
        assert len(mem.mshrs[0]) == 1
        settle(events)
        assert sorted(done) == ["a", "b"]

    def test_llc_miss_counted(self):
        mem, events, _ = make_memory()
        do_load(mem, events, 0, line=5)
        assert mem.stats["llc_misses"] == 1

    def test_l1_capacity_eviction_notifies_port(self):
        mem, events, ports = make_memory(l1_sets=4, l1_ways=2)
        # three lines in the same L1 set (set stride = 4)
        for line in (0, 4, 8):
            do_load(mem, events, 0, line)
        assert ports[0].evictions == [0]
        assert not mem.l1_hit(0, 0)

    def test_pinned_line_survives_l1_eviction_pressure(self):
        mem, events, ports = make_memory(l1_sets=4, l1_ways=2)
        do_load(mem, events, 0, 0)
        ports[0].pinned.add(0)
        do_load(mem, events, 0, 4)
        do_load(mem, events, 0, 8)   # would evict LRU line 0, but it's pinned
        assert mem.l1_hit(0, 0)
        assert 0 not in ports[0].evictions


class TestStorePath:
    def test_store_to_owned_line_is_local(self):
        mem, events, _ = make_memory()
        do_load(mem, events, 0, 5)
        assert do_store(mem, events, 0, 5)
        assert mem.l1s[0].lookup(5) is LineState.MODIFIED
        assert mem.stats["invalidations"] == 0

    def test_store_invalidates_remote_sharer(self):
        mem, events, ports = make_memory()
        do_load(mem, events, 0, 5)
        do_load(mem, events, 1, 5)
        assert do_store(mem, events, 0, 5)
        assert ports[1].invalidations == [5]
        assert not mem.l1_hit(1, 5)
        assert mem.l1s[0].lookup(5) is LineState.MODIFIED

    def test_store_miss_allocates_modified(self):
        mem, events, _ = make_memory()
        assert do_store(mem, events, 0, 7)
        assert mem.l1s[0].lookup(7) is LineState.MODIFIED


class TestPinnedLoadsProtocol:
    def test_write_to_pinned_line_defers(self):
        """Figure 3(b): the sharer's pin denies the invalidation; the write
        retries and only succeeds after the pin is released."""
        mem, events, ports = make_memory()
        do_load(mem, events, 1, 5)
        ports[1].pinned.add(5)
        done = []
        mem.store(0, 5, lambda c: done.append(c))
        # let the first attempt and a couple of retries process
        for _ in range(3):
            if events.empty:
                break
            events.run_until(events.next_time())
        assert not done                       # write is being deferred
        assert mem.stats["write_retries"] >= 1
        assert mem.l1_hit(1, 5)               # sharer kept its copy
        ports[1].pinned.discard(5)            # the pinned load retires
        settle(events)
        assert done                           # write eventually succeeds
        assert not mem.l1_hit(1, 5)

    def test_retry_uses_inv_star_and_populates_cpt(self):
        """Figure 5(a): the second attempt (GetX*) makes every sharer add
        the line to its Cannot-Pin Table."""
        mem, events, ports = make_memory()
        do_load(mem, events, 1, 5)
        ports[1].pinned.add(5)
        done = []
        mem.store(0, 5, lambda c: done.append(c))
        for _ in range(4):
            if events.empty:
                break
            events.run_until(events.next_time())
        assert 5 in ports[1].cpt
        ports[1].pinned.discard(5)
        settle(events)
        assert done

    def test_successful_retry_sends_clear(self):
        """Figure 5(b): once the write succeeds, Clear empties the CPTs."""
        mem, events, ports = make_memory()
        do_load(mem, events, 1, 5)
        ports[1].pinned.add(5)
        done = []
        mem.store(0, 5, lambda c: done.append(c))
        for _ in range(4):
            if events.empty:
                break
            events.run_until(events.next_time())
        ports[1].pinned.discard(5)
        settle(events)
        assert done
        assert 5 not in ports[1].cpt
        assert ports[1].cpt_clears == [5]

    def test_unpinned_inv_star_recipient_invalidates_immediately(self):
        """§5.1.5: on Inv*, sharers without a pin ack and invalidate."""
        mem, events, ports = make_memory(num_cores=3)
        do_load(mem, events, 1, 5)
        do_load(mem, events, 2, 5)
        ports[1].pinned.add(5)
        done = []
        mem.store(0, 5, lambda c: done.append(c))
        for _ in range(4):
            if events.empty:
                break
            events.run_until(events.next_time())
        # core 2 was not pinned: after the Inv* retry it must have dropped
        # its copy even though the write is still deferred by core 1
        assert not mem.l1_hit(2, 5)
        assert 5 in ports[2].cpt
        ports[1].pinned.discard(5)
        settle(events)
        assert done
        assert 5 not in ports[2].cpt

    def test_llc_victim_pinned_by_any_core_is_skipped(self):
        """§5.1.3: the directory/LLC never evicts a pinned line."""
        mem, events, ports = make_memory(llc_ways=4, l1_sets=64)
        # fill one LLC set (set stride = 4 lines within a slice): find
        # lines mapping to the same slice and set
        target_slice = slice_of(0, mem.num_slices)
        same_set = [line for line in range(0, 4096, 4)
                    if slice_of(line, mem.num_slices) == target_slice][:5]
        assert len(same_set) == 5
        for line in same_set[:4]:
            do_load(mem, events, 0, line)
        ports[0].pinned.add(same_set[0])
        do_load(mem, events, 1, same_set[4])   # forces an LLC eviction
        assert mem.slices[target_slice].lookup(same_set[0],
                                               touch=False) is not None
        assert same_set[0] not in ports[0].evictions

    def test_back_invalidation_notifies_holders(self):
        mem, events, ports = make_memory(llc_ways=4, l1_sets=64)
        target_slice = slice_of(0, mem.num_slices)
        same_set = [line for line in range(0, 4096, 4)
                    if slice_of(line, mem.num_slices) == target_slice][:5]
        for line in same_set[:4]:
            do_load(mem, events, 0, line)
        do_load(mem, events, 1, same_set[4])
        # the LLC victim was back-invalidated out of core 0's L1
        assert len(ports[0].evictions) >= 1
        evicted = ports[0].evictions[0]
        assert not mem.l1_hit(0, evicted)


class TestPrefetch:
    def test_next_line_prefetched_on_miss(self):
        mem, events, _ = make_memory(prefetch=True, l1_sets=8)
        do_load(mem, events, 0, 3)
        assert mem.stats["prefetches"] == 1
        assert mem.l1_hit(0, 4)

    def test_no_prefetch_when_disabled(self):
        mem, events, _ = make_memory(prefetch=False)
        do_load(mem, events, 0, 3)
        assert mem.stats["prefetches"] == 0

    def test_demand_load_merges_into_prefetch(self):
        mem, events, _ = make_memory(prefetch=True, l1_sets=8)
        done = []
        mem.load(0, 3, lambda c: done.append("demand1"))
        mem.load(0, 4, lambda c: done.append("demand2"))  # merges
        assert len(mem.mshrs[0]) == 2
        settle(events)
        assert sorted(done) == ["demand1", "demand2"]


class TestNetworkAccounting:
    def test_messages_counted_per_kind(self):
        mem, events, _ = make_memory()
        do_load(mem, events, 0, 5)
        assert mem.network.message_count("getS") == 1
        assert mem.network.message_count("data") == 1

    def test_defer_messages_counted(self):
        mem, events, ports = make_memory()
        do_load(mem, events, 1, 5)
        ports[1].pinned.add(5)
        mem.store(0, 5, lambda c: None)
        for _ in range(3):
            if events.empty:
                break
            events.run_until(events.next_time())
        assert mem.network.message_count("defer") >= 1
        ports[1].pinned.discard(5)
        settle(events)
