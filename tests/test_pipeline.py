"""End-to-end pipeline behaviour on small hand-built traces."""

import pytest

from repro.common.params import (CacheParams, CoreParams, DefenseKind,
                                 SystemConfig, ThreatModel)
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.sim.runner import run_simulation
from repro.sim.system import System

BASE = SystemConfig(core=CoreParams(), l1_prefetch=False)


def run_trace(uops, config=BASE, warm=False):
    workload = Workload([Trace(uops)], name="hand")
    return run_simulation(config, workload, warm=warm)


def alu(i, deps=()):
    return MicroOp(i, OpClass.INT_ALU, deps=deps)


def load(i, addr, deps=()):
    return MicroOp(i, OpClass.LOAD, addr=addr, deps=deps)


def store(i, addr, deps=()):
    return MicroOp(i, OpClass.STORE, addr=addr, deps=deps)


def branch(i, deps=(), mispredicted=False):
    return MicroOp(i, OpClass.BRANCH, deps=deps, mispredicted=mispredicted)


class TestBasicExecution:
    def test_all_instructions_retire(self):
        result = run_trace([alu(i) for i in range(20)])
        assert result.core_stats[0].get("retired", 0) == 20

    def test_independent_alus_retire_at_full_width(self):
        result = run_trace([alu(i) for i in range(64)])
        # 8-wide machine: 64 independent 1-cycle ALUs need only a few cycles
        assert result.cycles < 64

    def test_dependence_chain_serializes(self):
        chain = [alu(0)] + [alu(i, deps=(i - 1,)) for i in range(1, 32)]
        result = run_trace(chain)
        assert result.cycles >= 32   # one per cycle at best

    def test_fp_latency_longer_than_int(self):
        ints = run_trace([alu(0)] + [alu(i, deps=(i - 1,))
                                     for i in range(1, 16)])
        fps = run_trace([MicroOp(0, OpClass.FP_ALU)]
                        + [MicroOp(i, OpClass.FP_ALU, deps=(i - 1,))
                           for i in range(1, 16)])
        assert fps.cycles > ints.cycles

    def test_load_value_feeds_consumer(self):
        result = run_trace([load(0, 0x40), alu(1, deps=(0,))])
        assert result.core_stats[0].get("retired", 0) == 2

    def test_loads_count_in_memory_stats(self):
        result = run_trace([load(i, 0x40 * i) for i in range(4)])
        assert result.mem_stats.get("loads", 0) == 4


class TestBranches:
    def test_correct_predictions_cost_nothing_extra(self):
        no_branch = run_trace([alu(i) for i in range(32)])
        with_branch = run_trace(
            [branch(i) if i % 4 == 0 else alu(i) for i in range(32)])
        assert with_branch.core_stats[0].get("squashes_branch", 0) == 0
        assert with_branch.cycles <= no_branch.cycles + 16

    def test_mispredict_squashes_and_replays(self):
        uops = [alu(0), branch(1, deps=(0,), mispredicted=True)] \
            + [alu(i) for i in range(2, 10)]
        result = run_trace(uops)
        stats = result.core_stats[0]
        assert stats.get("squashes_branch", 0) == 1
        assert stats.get("squashed_uops", 0) >= 1
        assert stats.get("retired", 0) == 10    # everything still retires

    def test_mispredict_costs_redirect_penalty(self):
        clean = run_trace([alu(i) for i in range(10)])
        dirty = run_trace([branch(0, mispredicted=True)]
                          + [alu(i) for i in range(1, 10)])
        assert dirty.cycles >= clean.cycles + BASE.core.branch_resolve_latency

    def test_replayed_branch_predicts_correctly(self):
        # two mispredicts would double-squash if the predictor never learned
        uops = [branch(0, mispredicted=True), branch(1, mispredicted=True)] \
            + [alu(i) for i in range(2, 6)]
        result = run_trace(uops)
        assert result.core_stats[0].get("squashes_branch", 0) == 2
        assert result.core_stats[0].get("retired", 0) == 6


class TestStoresAndForwarding:
    def test_store_drains_through_write_buffer(self):
        result = run_trace([store(0, 0x40), alu(1)])
        assert result.core_stats[0].get("stores_performed", 0) == 1
        assert result.mem_stats.get("stores", 0) == 1

    def test_store_to_load_forwarding(self):
        result = run_trace([store(0, 0x40), load(1, 0x40)])
        assert result.core_stats[0].get("loads_forwarded", 0) == 1
        assert result.mem_stats.get("loads", 0) == 0   # never reached the cache

    def test_alias_squash_when_store_address_resolves_late(self):
        # the store's address depends on a long FP chain; the younger load
        # to the same (warm, L1-resident) line performs early — reading a
        # stale value — and must be squashed when the store resolves
        fp_chain = [MicroOp(1, OpClass.FP_ALU, deps=(0,))] \
            + [MicroOp(i, OpClass.FP_ALU, deps=(i - 1,))
               for i in range(2, 9)]
        uops = [load(0, 0x40)] + fp_chain \
            + [store(9, 0x40, deps=(8,)), load(10, 0x40)]
        result = run_trace(uops, warm=True)
        assert result.core_stats[0].get("squashes_alias", 0) == 1
        assert result.core_stats[0].get("retired", 0) == 11

    def test_fence_orders_write_buffer(self):
        uops = [store(0, 0x40), MicroOp(1, OpClass.FENCE), alu(2)]
        result = run_trace(uops)
        assert result.core_stats[0].get("retired", 0) == 3
        assert result.core_stats[0].get("stores_performed", 0) == 1


class TestMCVSquash:
    def _two_core_config(self):
        return SystemConfig(num_cores=2, l1_prefetch=False)

    def test_remote_store_squashes_performed_speculative_load(self):
        """Core 1 performs a young load early (Unsafe), core 0 then writes
        the line: TSO demands the load be squashed and replayed."""
        shared = 0x1000
        slow = [MicroOp(0, OpClass.FP_ALU)] \
            + [MicroOp(i, OpClass.FP_ALU, deps=(i - 1,))
               for i in range(1, 12)]
        reader = Trace(
            [load(0, 0x40)]                    # older load, will be slow...
            + slow_shift(slow, 1)
            + [load(13, shared, deps=(12,)), load(14, shared)])
        # simpler: build reader below instead
        writer = Trace([alu(0), store(1, shared)])
        workload = Workload([writer, reader], name="mcv")
        result = run_simulation(self._two_core_config(), workload,
                                warm=True)
        stats = result.core_stats[1]
        assert stats.get("retired", 0) == len(reader)

    def test_mcv_squash_counted_under_unsafe(self):
        """Statistical check: the unsafe multicore machine does squash on
        invalidations (write-heavy shared traffic forces some)."""
        shared = 0x2000
        reader_uops = []
        index = 0
        for _ in range(40):
            reader_uops.append(MicroOp(index, OpClass.FP_ALU,
                                       deps=(index - 1,) if index else ()))
            index += 1
            reader_uops.append(load(index, shared + 0x40, deps=(index - 1,)))
            index += 1
            reader_uops.append(load(index, shared))
            index += 1
        writer_uops = []
        for i in range(40):
            writer_uops.append(store(i, shared))
        workload = Workload([Trace(writer_uops), Trace(reader_uops)],
                            name="mcv2")
        result = run_simulation(self._two_core_config(), workload, warm=True)
        squashes = result.squash_summary()
        assert squashes["mcv_inval"] >= 1
        assert result.core_stats[1].get("retired", 0) == len(reader_uops)


def slow_shift(uops, offset):
    """Re-index a uop list to start at ``offset`` (deps shifted too)."""
    shifted = []
    for uop in uops:
        shifted.append(MicroOp(uop.index + offset, uop.opclass,
                               deps=tuple(d + offset for d in uop.deps),
                               addr=uop.addr,
                               mispredicted=uop.mispredicted,
                               barrier_id=uop.barrier_id))
    return shifted


class TestBarriersAndAtomics:
    def test_barrier_synchronizes_cores(self):
        fast = Trace([alu(0), MicroOp(1, OpClass.BARRIER, barrier_id=0),
                      alu(2)])
        slow_chain = [MicroOp(0, OpClass.FP_ALU)] \
            + [MicroOp(i, OpClass.FP_ALU, deps=(i - 1,))
               for i in range(1, 30)]
        slow = Trace(slow_chain
                     + [MicroOp(30, OpClass.BARRIER, barrier_id=0), alu(31)])
        workload = Workload([fast, slow], name="barrier")
        config = SystemConfig(num_cores=2, l1_prefetch=False)
        result = run_simulation(config, workload, warm=False)
        # the fast core must have waited for the slow one
        assert result.cycles >= 30

    def test_atomics_serialize_and_complete(self):
        lock = 0x3000
        t0 = Trace([MicroOp(0, OpClass.ATOMIC, addr=lock), alu(1)])
        t1 = Trace([MicroOp(0, OpClass.ATOMIC, addr=lock), alu(1)])
        workload = Workload([t0, t1], name="locks")
        config = SystemConfig(num_cores=2, l1_prefetch=False)
        result = run_simulation(config, workload, warm=True)
        assert result.core_stats[0].get("atomics_issued", 0) == 1
        assert result.core_stats[1].get("atomics_issued", 0) == 1
        assert result.instructions == 4


class TestStructuralLimits:
    def test_rob_capacity_limits_window(self):
        tiny = SystemConfig(core=CoreParams(rob_entries=16),
                            l1_prefetch=False)
        big = SystemConfig(core=CoreParams(rob_entries=192),
                           l1_prefetch=False)
        # many independent misses: a bigger window overlaps more of them
        uops = [load(i, 0x40 * 64 * i) for i in range(24)]
        slow = run_simulation(SystemConfig(core=CoreParams(rob_entries=16),
                                           l1_prefetch=False),
                              Workload([Trace(uops)], name="w"), warm=False)
        fast = run_simulation(big, Workload([Trace(uops)], name="w"),
                              warm=False)
        assert fast.cycles < slow.cycles

    def test_deterministic_cycles(self):
        uops = [load(i, 0x40 * i) if i % 3 == 0 else alu(i)
                for i in range(50)]
        first = run_trace(uops)
        second = run_trace(uops)
        assert first.cycles == second.cycles
