"""Parallel executor, persistent result store, and hot-loop parity.

The contracts under test:

* results are bit-identical at any ``--jobs`` level and across disk
  round-trips (cold vs warm);
* the cache key is experiment *content* — config + trace fingerprint —
  so same-named workloads with different traces can never alias, and
  any config or trace change invalidates;
* a raising or deadlocked worker is isolated to a ``TaskFailure``;
* ``System.run`` (optimized loop) matches ``System.run_reference``.
"""

import json
import os

import pytest

from repro.common.params import (COMPREHENSIVE, ChaosConfig, DefenseKind,
                                 PinningMode, SystemConfig)
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.sim.executor import (CACHE_FORMAT_VERSION, Executor,
                                ResultStore, Task, cache_key)
from repro.sim.results import SimResult
from repro.sim.runner import ExperimentCache, run_simulation
from repro.sim.sweep import Sweep
from repro.sim.system import BarrierManager, System
from repro.workloads import spec17_workload

BASE = SystemConfig()
FENCE_EP = BASE.with_defense(DefenseKind.FENCE, COMPREHENSIVE,
                             PinningMode.EARLY)


def small_workload(name="mcf_r", instructions=300, seed=1):
    return spec17_workload(name, instructions=instructions, seed=seed)


def alu_workload(name, addr):
    """A tiny hand-built workload: one load at ``addr`` plus ALU ops."""
    uops = [MicroOp(0, OpClass.LOAD, addr=addr),
            MicroOp(1, OpClass.INT_ALU, deps=(0,)),
            MicroOp(2, OpClass.INT_ALU, deps=(1,))]
    return Workload([Trace(uops, name=f"{name}-t0")], name=name)


class TestFingerprint:
    def test_same_name_different_content_differ(self):
        a = alu_workload("app", addr=0x1000)
        b = alu_workload("app", addr=0x2000)
        assert a.name == b.name
        assert a.fingerprint != b.fingerprint

    def test_identical_content_matches(self):
        # names differ but content is equal -> fingerprints equal
        assert alu_workload("x", 0x40).fingerprint \
            == alu_workload("y", 0x40).fingerprint

    def test_generated_workloads_reproducible(self):
        assert small_workload(seed=1).fingerprint \
            == small_workload(seed=1).fingerprint
        assert small_workload(seed=1).fingerprint \
            != small_workload(seed=2).fingerprint


class TestCacheKey:
    def test_config_change_invalidates(self):
        wl = small_workload()
        assert cache_key(BASE, wl) != cache_key(FENCE_EP, wl)

    def test_trace_change_invalidates(self):
        assert cache_key(BASE, small_workload(seed=1)) \
            != cache_key(BASE, small_workload(seed=2))

    def test_name_does_not_participate(self):
        assert cache_key(BASE, alu_workload("a", 0x40)) \
            == cache_key(BASE, alu_workload("b", 0x40))


class TestRoundTrips:
    def test_system_config_round_trip(self):
        for config in (BASE, FENCE_EP,
                       BASE.with_defense(DefenseKind.STT, COMPREHENSIVE,
                                         PinningMode.LATE)):
            rebuilt = SystemConfig.from_dict(
                json.loads(json.dumps(config.to_dict())))
            assert rebuilt == config

    def test_sim_result_round_trip(self):
        result = run_simulation(BASE, small_workload())
        rebuilt = SimResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt.cycles == result.cycles
        assert rebuilt.config == result.config
        assert rebuilt.core_stats == result.core_stats
        assert rebuilt.pinning_stats == result.pinning_stats

    def test_result_store_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        wl = small_workload()
        result = run_simulation(BASE, wl)
        key = cache_key(BASE, wl)
        assert store.get(key) is None
        store.put(key, result)
        assert key in store
        loaded = store.get(key)
        assert loaded.cycles == result.cycles
        assert loaded.core_stats == result.core_stats

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        wl = small_workload()
        key = cache_key(BASE, wl)
        store.put(key, run_simulation(BASE, wl))
        path = os.path.join(str(tmp_path), f"v{CACHE_FORMAT_VERSION}",
                            key[:2], f"{key}.json")
        with open(path, "w") as fh:
            fh.write("{ truncated")
        assert store.get(key) is None


class TestExperimentCacheContent:
    def test_same_name_different_content_not_aliased(self):
        """The regression this PR fixes: the memo used to key on the
        workload *name*, conflating same-named workloads."""
        cache = ExperimentCache()
        a = cache.run(BASE, alu_workload("app", addr=0x1000))
        b = cache.run(BASE, alu_workload("app", addr=0x40_0000))
        assert a is not b

    def test_legacy_key_argument_ignored(self):
        cache = ExperimentCache()
        wl = small_workload()
        a = cache.run(BASE, wl, key="spec17:mcf_r")
        b = cache.run(BASE, wl, key="other-label")
        assert a is b

    def test_store_backed_cache_survives_memo_clear(self, tmp_path):
        cache = ExperimentCache(cache_dir=str(tmp_path))
        wl = small_workload()
        a = cache.run(BASE, wl)
        cache.clear()
        b = cache.run(BASE, wl)
        assert cache.simulations == 1   # second run came from disk
        assert b.cycles == a.cycles


def _batch_tasks():
    workloads = [small_workload("mcf_r"), small_workload("leela_r")]
    configs = [BASE, FENCE_EP]
    return [Task(f"{w.name}:{i}", c, w)
            for w in workloads for i, c in enumerate(configs)]


def _assert_same_results(a, b):
    assert sorted(a) == sorted(b)
    for label in a:
        assert a[label].cycles == b[label].cycles, label
        assert a[label].core_stats == b[label].core_stats, label
        assert a[label].mem_stats == b[label].mem_stats, label
        assert a[label].pinning_stats == b[label].pinning_stats, label


class TestExecutorDeterminism:
    def test_serial_vs_parallel_bit_identical(self):
        tasks = _batch_tasks()
        serial = Executor(jobs=1).run_tasks(tasks)
        parallel = Executor(jobs=4).run_tasks(tasks)
        assert not serial.failures and not parallel.failures
        _assert_same_results(serial.results, parallel.results)

    def test_duplicate_tasks_deduplicated(self):
        wl = small_workload()
        tasks = [Task("a", BASE, wl), Task("b", BASE, wl)]
        outcome = Executor(jobs=1).run_tasks(tasks, cache=ExperimentCache())
        assert outcome.stats["simulated"] == 1
        assert outcome.stats["deduplicated"] == 1
        assert outcome.results["a"].cycles == outcome.results["b"].cycles


class TestPersistentReuse:
    def test_cold_then_warm_zero_resimulations(self, tmp_path):
        tasks = _batch_tasks()
        store = ResultStore(str(tmp_path))
        cold = Executor(jobs=2).run_tasks(
            tasks, cache=ExperimentCache(store=store))
        assert not cold.failures
        assert cold.stats["simulated"] == len(tasks)
        warm_cache = ExperimentCache(store=store)   # fresh process memo
        warm = Executor(jobs=2).run_tasks(tasks, cache=warm_cache)
        assert not warm.failures
        assert warm.stats["simulated"] == 0
        assert warm_cache.store_hits == len(tasks)
        _assert_same_results(cold.results, warm.results)

    def test_config_change_misses_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        wl = small_workload()
        Executor(jobs=1).run_tasks([Task("a", BASE, wl)],
                                   cache=ExperimentCache(store=store))
        changed = Executor(jobs=1).run_tasks(
            [Task("a", FENCE_EP, wl)], cache=ExperimentCache(store=store))
        assert changed.stats["simulated"] == 1

    def test_trace_change_misses_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        Executor(jobs=1).run_tasks(
            [Task("a", BASE, small_workload(seed=1))],
            cache=ExperimentCache(store=store))
        changed = Executor(jobs=1).run_tasks(
            [Task("a", BASE, small_workload(seed=2))],
            cache=ExperimentCache(store=store))
        assert changed.stats["simulated"] == 1


class TestFailureIsolation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_raising_task_isolated(self, jobs):
        bad = Task("bad", SystemConfig(num_cores=2), small_workload())
        good = Task("good", BASE, small_workload())
        outcome = Executor(jobs=jobs).run_tasks([bad, good])
        assert [f.label for f in outcome.failures] == ["bad"]
        assert outcome.failures[0].kind == "error"
        assert "ConfigError" in outcome.failures[0].message
        assert "good" in outcome.results
        with pytest.raises(RuntimeError):
            outcome.result("bad")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_deadlocked_task_times_out(self, jobs):
        # thread 0 waits on a barrier thread 1 never reaches; with the
        # deadlock detector effectively disabled the simulation spins
        # ~forever, so only the per-task timeout can reclaim it.  Run
        # sanitized: sanitized runs never fast-forward (every invariant
        # check sees every cycle), so the spin is real and cannot be
        # short-circuited into a max_cycles DeadlockError.
        t0 = Trace([MicroOp(0, OpClass.BARRIER, barrier_id=0)], "t0")
        t1 = Trace([MicroOp(0, OpClass.INT_ALU)], "t1")
        hung = Workload([t0, t1], name="hung")
        import dataclasses
        config = dataclasses.replace(
            SystemConfig(num_cores=2).with_defense(
                DefenseKind.FENCE, COMPREHENSIVE, PinningMode.EARLY),
            deadlock_cycles=10**9, sanitize=True)
        tasks = [Task("hung", config, hung, timeout_s=1),
                 Task("good", BASE, small_workload())]
        outcome = Executor(jobs=jobs).run_tasks(tasks)
        assert [f.label for f in outcome.failures] == ["hung"]
        assert outcome.failures[0].kind == "timeout"
        assert "good" in outcome.results


class TestSweepWithExecutor:
    def test_grid_matches_serial_sweep(self):
        from repro.sim.runner import scheme_grid
        cells = {k: v for k, v in scheme_grid().items()
                 if k in ("fence-comp", "fence-ep")}
        workloads = {"mcf": small_workload("mcf_r")}
        serial = Sweep(BASE, workloads).grid(cells)
        parallel = Sweep(BASE, workloads,
                         executor=Executor(jobs=2)).grid(cells)
        assert serial == parallel


def _grid_configs():
    """Every scheme the fast-forward must stay bit-exact for: the
    unsafe baseline plus each ``scheme_grid`` cell (fence/DOM/STT x
    Comp/LP/EP/Spectre)."""
    from repro.sim.runner import scheme_grid
    labeled = [("unsafe", BASE)]
    for label, (defense, threat, pinning) in sorted(scheme_grid().items()):
        labeled.append((label,
                        BASE.with_defense(defense, threat, pinning)))
    return labeled


_GRID = _grid_configs()


class TestOptimizedRunLoop:
    @pytest.mark.parametrize("config", [cfg for _, cfg in _GRID],
                             ids=[label for label, _ in _GRID])
    def test_run_matches_reference(self, config):
        wl = small_workload(instructions=400)
        opt = System(config, wl)
        opt.mem.warm(wl)
        ref = System(config, wl)
        ref.mem.warm(wl)
        assert opt.run() == ref.run_reference()
        for a, b in zip(opt.cores, ref.cores):
            assert a.stats.as_dict() == b.stats.as_dict()
            assert a.controller.stats.as_dict() \
                == b.controller.stats.as_dict()
            assert a.retired == b.retired


class TestFastForwardDeadlock:
    def test_deadlock_cycle_matches_reference(self):
        """A quiet deadlock (all cores frozen, no events) fast-forwards
        straight to the detector — at the exact cycle the cycle-by-cycle
        reference loop raises."""
        import dataclasses
        from repro.common.errors import DeadlockError
        t0 = Trace([MicroOp(0, OpClass.BARRIER, barrier_id=0)], "t0")
        t1 = Trace([MicroOp(0, OpClass.INT_ALU)], "t1")
        hung = Workload([t0, t1], name="hung")
        config = dataclasses.replace(SystemConfig(num_cores=2),
                                     deadlock_cycles=3000)
        with pytest.raises(DeadlockError) as opt:
            System(config, hung).run()
        with pytest.raises(DeadlockError) as ref:
            System(config, hung).run_reference()
        assert opt.value.cycle == ref.value.cycle


class TestBarrierMemoryBound:
    def test_released_barrier_drops_arrival_set(self):
        barriers = BarrierManager(num_cores=2)
        for barrier_id in range(100):
            barriers.arrive(barrier_id, 0)
            barriers.arrive(barrier_id, 1)
            assert barriers.released(barrier_id)
        # arrival sets are dropped at release: memory is bounded by the
        # number of distinct barriers, not total arrivals
        assert barriers._arrived == {}

    def test_late_arrival_after_release_is_noop(self):
        barriers = BarrierManager(num_cores=1)
        barriers.arrive(7, 0)
        assert barriers.released(7)
        barriers.arrive(7, 0)   # replayed arrival must not resurrect it
        assert barriers._arrived == {}


def _hung_workload():
    # thread 0 parks at a barrier thread 1 never reaches
    t0 = Trace([MicroOp(0, OpClass.BARRIER, barrier_id=0)], "t0")
    t1 = Trace([MicroOp(0, OpClass.INT_ALU)], "t1")
    return Workload([t0, t1], name="hung")


def _quiet_chaos(**fields):
    """A ChaosConfig that injects no timing faults — only the executor
    process faults (crash/stall) named in ``fields``.  Serial runs of
    the same config are therefore the bit-exact ground truth: process
    faults only fire inside pool worker processes."""
    return ChaosConfig(msg_jitter=0, msg_jitter_prob=0.0, nack_prob=0.0,
                       evict_interval=0, **fields)


class TestAlarmLifecycle:
    def test_timeout_then_success_back_to_back(self):
        """Regression for the SIGALRM lifecycle: after a task times out,
        the next task in the same process must run cleanly — no pending
        alarm may survive a task, and the previous handler must be back
        in place."""
        import dataclasses
        import signal
        if not hasattr(signal, "SIGALRM"):
            pytest.skip("platform has no SIGALRM")
        before = signal.getsignal(signal.SIGALRM)
        config = dataclasses.replace(
            SystemConfig(num_cores=2).with_defense(
                DefenseKind.FENCE, COMPREHENSIVE, PinningMode.EARLY),
            # sanitized runs never fast-forward, so the spin is real
            deadlock_cycles=10**9, sanitize=True)
        tasks = [Task("hung", config, _hung_workload(), timeout_s=1),
                 Task("good", BASE, small_workload(), timeout_s=30)]
        outcome = Executor(jobs=1).run_tasks(tasks)
        assert [f.label for f in outcome.failures] == ["hung"]
        assert outcome.failures[0].kind == "timeout"
        # the second task ran with its own alarm and finished correctly
        assert outcome.results["good"].to_dict() \
            == run_simulation(BASE, small_workload()).to_dict()
        assert signal.alarm(0) == 0   # nothing pending leaked out
        assert signal.getsignal(signal.SIGALRM) == before


class TestWorkerCrashIsolation:
    def test_sigkilled_worker_retried_and_sibling_survives(self, tmp_path):
        """SIGKILL one pool worker mid-batch: the batch still returns
        every result — the killed task resumes from its rolling
        checkpoint on retry, the pool is rebuilt, and nothing raises."""
        import dataclasses
        crash = dataclasses.replace(
            BASE, chaos=_quiet_chaos(crash_at_cycle=400, crash_attempts=1))
        tasks = [Task("crashy", crash, small_workload()),
                 Task("solid", BASE, small_workload("leela_r"))]
        executor = Executor(jobs=2, retries=1,
                            checkpoint_dir=str(tmp_path),
                            checkpoint_interval=150)
        outcome = executor.run_tasks(tasks)
        assert not outcome.failures
        assert set(outcome.results) == {"crashy", "solid"}
        assert outcome.stats["pool_rebuilds"] >= 1
        assert outcome.stats["retries"] >= 1
        serial = run_simulation(crash, small_workload())
        assert outcome.results["crashy"].to_dict() == serial.to_dict()
        assert outcome.results["solid"].to_dict() \
            == run_simulation(BASE, small_workload("leela_r")).to_dict()

    def test_exhausted_crash_budget_is_a_task_failure(self, tmp_path):
        """A worker that dies on every attempt ends as a TaskFailure of
        kind 'interrupted' — run_tasks never raises."""
        import dataclasses
        crash = dataclasses.replace(
            BASE, chaos=_quiet_chaos(crash_at_cycle=400, crash_attempts=99))
        outcome = Executor(jobs=2, retries=1,
                           checkpoint_dir=str(tmp_path),
                           checkpoint_interval=150,
                           pool_failure_limit=99).run_tasks(
            [Task("doomed", crash, small_workload())])
        assert outcome.results == {}
        assert [f.label for f in outcome.failures] == ["doomed"]
        assert outcome.failures[0].kind == "interrupted"
        assert outcome.failures[0].attempts >= 2

    def test_unhealthy_pool_degrades_to_serial(self, tmp_path):
        """When the pool keeps dying, the executor falls back to serial
        in-process execution and the whole batch still completes.
        (Process-fault injection is gated to pool workers, so the
        repeat-crasher runs clean serially — exactly the 'poisoned
        environment' the fallback exists for.)"""
        import dataclasses
        crash = dataclasses.replace(
            BASE, chaos=_quiet_chaos(crash_at_cycle=400, crash_attempts=99))
        tasks = [Task("doomed", crash, small_workload()),
                 Task("solid", BASE, small_workload("leela_r"))]
        outcome = Executor(jobs=2, retries=2,
                           checkpoint_dir=str(tmp_path),
                           checkpoint_interval=150,
                           pool_failure_limit=1).run_tasks(tasks)
        assert not outcome.failures
        assert set(outcome.results) == {"doomed", "solid"}
        assert outcome.stats["degraded_serial"] == 1
        assert outcome.results["doomed"].to_dict() \
            == run_simulation(crash, small_workload()).to_dict()


class TestTimeoutRetryFromCheckpoint:
    def test_timed_out_task_resumes_and_matches_serial(self, tmp_path):
        """Acceptance: a task that times out (injected wall-clock stall)
        is retried, resumes from its rolling checkpoint, and produces a
        result bit-identical to an unfaulted serial run."""
        import dataclasses
        stall = dataclasses.replace(
            BASE, chaos=_quiet_chaos(stall_at_cycle=400, stall_seconds=30.0,
                                     stall_attempts=1))
        task = Task("stall", stall, small_workload(), timeout_s=2)
        outcome = Executor(jobs=2, retries=1,
                           checkpoint_dir=str(tmp_path),
                           checkpoint_interval=150).run_tasks([task])
        assert not outcome.failures
        assert outcome.stats["retries"] == 1
        assert outcome.stats["resumed"] >= 1
        serial = run_simulation(stall, small_workload())
        assert outcome.results["stall"].to_dict() == serial.to_dict()


class TestResultStoreQuarantine:
    def _populated_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        workload = small_workload()
        key = cache_key(BASE, workload)
        result = run_simulation(BASE, workload)
        store.put(key, result)
        return store, key, result

    def test_unparseable_entry_quarantined_once(self, tmp_path, caplog):
        import logging
        store, key, _ = self._populated_store(tmp_path)
        path = store._path(key)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{ truncated")
        with caplog.at_level(logging.WARNING, logger="repro.sim.executor"):
            assert store.get(key) is None
        assert any("quarantin" in record.message.lower()
                   for record in caplog.records)
        quarantine = os.path.join(str(tmp_path), "quarantine")
        assert len(os.listdir(quarantine)) == 1
        assert not os.path.exists(path)
        # second read: plain miss, nothing new quarantined
        assert store.get(key) is None
        assert len(os.listdir(quarantine)) == 1

    def test_checksum_mismatch_quarantined(self, tmp_path):
        """Valid JSON with a silently flipped stat must not be served:
        the checksum catches it and the file is quarantined."""
        store, key, result = self._populated_store(tmp_path)
        path = store._path(key)
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["result"]["cycles"] += 1
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        assert store.get(key) is None
        quarantine = os.path.join(str(tmp_path), "quarantine")
        assert len(os.listdir(quarantine)) == 1
        # the slot is reusable after quarantine
        store.put(key, result)
        assert store.get(key).to_dict() == result.to_dict()


class TestWorkerMemoryCeiling:
    """``Executor(worker_memory_mb=...)``: RLIMIT_AS in pool workers
    turns a runaway allocation into a retryable 'oom' failure instead of
    inviting the kernel OOM killer to shoot the host."""

    def _needs_rlimit(self):
        import resource
        if not hasattr(resource, "RLIMIT_AS"):
            pytest.skip("platform has no RLIMIT_AS")

    def test_oom_is_retried_and_recovers(self, tmp_path):
        """The chaos alloc fault (16 GiB ballast) trips the 2 GiB worker
        ceiling on attempt 1; attempt 2 runs clean (the fault is
        attempt-gated) and resumes from the rolling checkpoint."""
        import dataclasses
        self._needs_rlimit()
        hog = dataclasses.replace(
            BASE, chaos=_quiet_chaos(alloc_at_cycle=400, alloc_mb=16384,
                                     alloc_attempts=1))
        outcome = Executor(jobs=2, retries=1, worker_memory_mb=2048,
                           checkpoint_dir=str(tmp_path),
                           checkpoint_interval=150).run_tasks(
            [Task("hog", hog, small_workload())])
        assert not outcome.failures
        assert outcome.stats["retries"] == 1
        # process faults never fire serially, so this is ground truth
        serial = run_simulation(hog, small_workload())
        assert outcome.results["hog"].to_dict() == serial.to_dict()

    def test_persistent_hog_fails_as_oom(self, tmp_path):
        self._needs_rlimit()
        import dataclasses
        hog = dataclasses.replace(
            BASE, chaos=_quiet_chaos(alloc_at_cycle=400, alloc_mb=16384,
                                     alloc_attempts=99))
        outcome = Executor(jobs=2, retries=1, worker_memory_mb=2048,
                           checkpoint_dir=str(tmp_path),
                           checkpoint_interval=150).run_tasks(
            [Task("hog", hog, small_workload())])
        assert outcome.results == {}
        assert [f.label for f in outcome.failures] == ["hog"]
        assert outcome.failures[0].kind == "oom"
        assert outcome.failures[0].attempts == 2
        assert "RLIMIT_AS" in outcome.failures[0].message

    def test_ceiling_off_by_default(self):
        """Without a ceiling a modest allocation sails through — the
        limit is strictly opt-in."""
        import dataclasses
        modest = dataclasses.replace(
            BASE, chaos=_quiet_chaos(alloc_at_cycle=400, alloc_mb=64,
                                     alloc_attempts=1))
        outcome = Executor(jobs=2).run_tasks(
            [Task("modest", modest, small_workload())])
        assert not outcome.failures
        assert outcome.stats["retries"] == 0

    def test_rejects_nonsense_ceiling(self):
        with pytest.raises(ValueError):
            Executor(jobs=2, worker_memory_mb=0)


class TestLockstepBatching:
    """Same-workload cells interleaved in one process (lockstep=N)."""

    SCHEMES = (BASE, FENCE_EP,
               BASE.with_defense(DefenseKind.DOM, COMPREHENSIVE,
                                 PinningMode.EARLY))

    def _tasks(self, workload):
        return [Task(f"cell{i}", config, workload)
                for i, config in enumerate(self.SCHEMES)]

    def test_batched_results_bit_identical_to_serial(self):
        workload = small_workload()
        tasks = self._tasks(workload)
        plain = Executor(jobs=1).run_tasks(tasks)
        batched = Executor(jobs=1, lockstep=3).run_tasks(tasks)
        assert not plain.failures and not batched.failures
        assert batched.stats["lockstep_batches"] == 1
        for task in tasks:
            a = plain.results[task.label]
            b = batched.results[task.label]
            assert (a.cycles, a.core_stats, a.pinning_stats) \
                == (b.cycles, b.core_stats, b.pinning_stats)

    def test_groups_by_workload_content(self):
        # different workloads never share a batch; chunking is by
        # content fingerprint, not label
        tasks = self._tasks(small_workload()) \
            + [Task("other", BASE, small_workload(seed=2))]
        outcome = Executor(jobs=1, lockstep=8).run_tasks(tasks)
        assert not outcome.failures
        assert outcome.stats["lockstep_batches"] == 1

    def test_failure_isolated_inside_batch(self):
        # a hair-trigger deadlock window makes one member of the batch
        # raise DeadlockError deterministically; its sibling finishes
        import dataclasses
        workload = small_workload()
        sick = dataclasses.replace(BASE, deadlock_cycles=2)
        tasks = [Task("good", FENCE_EP, workload),
                 Task("sick", sick, workload)]
        outcome = Executor(jobs=1, lockstep=2).run_tasks(tasks)
        assert [f.label for f in outcome.failures] == ["sick"]
        assert "good" in outcome.results

    def test_checkpointing_disables_batching(self, tmp_path):
        workload = small_workload()
        ex = Executor(jobs=1, lockstep=4,
                      checkpoint_dir=str(tmp_path / "ckpt"))
        outcome = ex.run_tasks(self._tasks(workload))
        assert not outcome.failures
        assert outcome.stats["lockstep_batches"] == 0

    def test_rejects_nonsense_lockstep(self):
        with pytest.raises(ValueError):
            Executor(lockstep=0)
        with pytest.raises(ValueError):
            Executor(lockstep_quantum=0)
