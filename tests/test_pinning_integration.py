"""Pinned Loads end-to-end: LP/EP speedups, safety invariants, resource
checks, starvation handling, and the paper's §5 design rules."""

import pytest

from repro.common.params import (CoreParams, DefenseKind, PinnedLoadsParams,
                                 PinningMode, SystemConfig, ThreatModel)
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.sim.runner import run_simulation
from repro.workloads import parallel_workload, spec17_workload


def alu(i, deps=()):
    return MicroOp(i, OpClass.INT_ALU, deps=deps)


def load(i, addr, deps=()):
    return MicroOp(i, OpClass.LOAD, addr=addr, deps=deps)


def store(i, addr, deps=()):
    return MicroOp(i, OpClass.STORE, addr=addr, deps=deps)


def config_for(mode, defense=DefenseKind.FENCE, num_cores=1, **pin_kw):
    pinning = PinnedLoadsParams(mode=mode, **pin_kw)
    return SystemConfig(num_cores=num_cores, defense=defense,
                        threat_model=ThreatModel.MCV, pinning=pinning,
                        l1_prefetch=False)


def run(uops_or_workload, config, warm=True):
    if isinstance(uops_or_workload, list):
        workload = Workload([Trace(uops_or_workload)], name="t")
    else:
        workload = uops_or_workload
    return run_simulation(config, workload, warm=warm)


def total_pinning_stat(result, name):
    return sum(stats.get(name, 0) for stats in result.pinning_stats.values())


INDEPENDENT_LOADS = [load(i, 0x40 * 64 * i) for i in range(16)]


class TestSpeedups:
    def test_lp_beats_plain_comprehensive(self):
        plain = run(INDEPENDENT_LOADS, config_for(PinningMode.NONE))
        lp = run(INDEPENDENT_LOADS, config_for(PinningMode.LATE))
        assert lp.cycles < plain.cycles

    def test_ep_beats_lp_on_independent_misses(self):
        """Figure 2(c-f): EP overlaps misses, LP issues them sequentially."""
        lp = run(INDEPENDENT_LOADS, config_for(PinningMode.LATE),
                 warm=False)
        ep = run(INDEPENDENT_LOADS, config_for(PinningMode.EARLY),
                 warm=False)
        assert ep.cycles < lp.cycles

    def test_dependent_loads_limit_ep(self):
        """Figure 2(g-h): EP cannot overlap a pointer chase."""
        chase = [load(0, 0x40)] + [load(i, 0x40 * 64 * i, deps=(i - 1,))
                                   for i in range(1, 8)]
        ep_chase = run(chase, config_for(PinningMode.EARLY), warm=False)
        ep_indep = run(INDEPENDENT_LOADS[:8], config_for(PinningMode.EARLY),
                       warm=False)
        assert ep_chase.cycles > ep_indep.cycles

    def test_pins_actually_happen(self):
        ep = run(INDEPENDENT_LOADS, config_for(PinningMode.EARLY))
        assert total_pinning_stat(ep, "pins") > 0

    def test_oldest_load_exemption_used(self):
        lp = run(INDEPENDENT_LOADS, config_for(PinningMode.LATE))
        assert total_pinning_stat(lp, "oldest_exemptions") > 0


class TestSafetyInvariants:
    @pytest.mark.parametrize("mode", [PinningMode.LATE, PinningMode.EARLY])
    @pytest.mark.parametrize("bench", ["mcf_r", "leela_r"])
    def test_pinned_loads_are_never_squashed(self, mode, bench):
        """§4: a pinned load's retirement is guaranteed."""
        workload = spec17_workload(bench, instructions=1500)
        result = run(workload, config_for(mode, DefenseKind.STT))
        assert total_pinning_stat(result, "pinned_squashed") == 0

    @pytest.mark.parametrize("mode", [PinningMode.LATE, PinningMode.EARLY])
    def test_pinned_loads_never_squashed_multicore(self, mode):
        workload = parallel_workload("radiosity", num_threads=4,
                                     instructions_per_thread=600)
        config = config_for(mode, DefenseKind.DOM, num_cores=4)
        result = run(workload, config)
        assert total_pinning_stat(result, "pinned_squashed") == 0

    @pytest.mark.parametrize("mode", [PinningMode.LATE, PinningMode.EARLY])
    def test_no_mcv_squashes_under_comprehensive_pinning(self, mode):
        """Pinning must not reintroduce MCV squashes the Comp baseline
        prevents: loads only issue once unsquashable."""
        workload = parallel_workload("water_spatial", num_threads=4,
                                     instructions_per_thread=600)
        config = config_for(mode, DefenseKind.FENCE, num_cores=4)
        result = run(workload, config)
        squashes = result.squash_summary()
        assert squashes["mcv_inval"] == 0
        assert squashes["mcv_evict"] == 0

    def test_all_instructions_retire_with_pinning(self):
        workload = spec17_workload("xz_r", instructions=1500)
        for mode in (PinningMode.LATE, PinningMode.EARLY):
            result = run(workload, config_for(mode))
            assert result.core_stats[0]["retired"] == 1500


class TestResourceChecks:
    def test_write_buffer_check_blocks_pinning(self):
        """§5.1.2: with a tiny write buffer and many older stores, loads
        cannot be pinned (no deadlock, just stalls)."""
        uops = [store(i, 0x40 * 64 * i) for i in range(8)] \
            + [load(8, 0x9000), load(9, 0xA000)]
        config = config_for(PinningMode.EARLY,
                            num_cores=1)
        config = SystemConfig(
            core=CoreParams(write_buffer_entries=2),
            defense=DefenseKind.FENCE, threat_model=ThreatModel.MCV,
            pinning=PinnedLoadsParams(mode=PinningMode.EARLY),
            l1_prefetch=False)
        result = run(uops, config)
        assert result.core_stats[0]["retired"] == 10
        assert total_pinning_stat(result, "pin_denied_wb") > 0

    def test_cst_capacity_denies_pins(self):
        """§5.1.4: a 1-entry, 1-record CST cannot hold two pinned lines."""
        config = config_for(PinningMode.EARLY, l1_cst_entries=1,
                            l1_cst_records=1, dir_cst_entries=1,
                            dir_cst_records=1)
        result = run(INDEPENDENT_LOADS, config, warm=False)
        assert result.core_stats[0]["retired"] == len(INDEPENDENT_LOADS)
        ep_stats = result.pinning_stats[0]
        denials = (ep_stats.get("cst_l1_denials", 0)
                   + ep_stats.get("cst_dir_denials", 0))
        assert denials > 0

    def test_infinite_cst_never_denies(self):
        config = config_for(PinningMode.EARLY, infinite_cst=True)
        result = run(INDEPENDENT_LOADS, config, warm=False)
        stats = result.pinning_stats[0]
        assert stats.get("cst_l1_denials", 0) == 0
        assert stats.get("cst_dir_denials", 0) == 0

    def test_lq_id_wraparound_drains_and_recovers(self):
        """§6.2: a tiny LQ ID tag forces wraparound; pinning pauses, the
        CST is cleared, and execution stays correct."""
        workload = spec17_workload("namd_r", instructions=1200)
        config = config_for(PinningMode.EARLY, lq_id_tag_bits=7)
        result = run(workload, config)
        assert result.core_stats[0]["retired"] == 1200
        assert total_pinning_stat(result, "lq_id_wraparounds") >= 1

    def test_serializing_ops_block_pinning_past_them(self):
        """§5: no load younger than an in-ROB MFENCE/LOCK is pinned."""
        uops = [store(0, 0x40), MicroOp(1, OpClass.FENCE),
                load(2, 0x80), load(3, 0xC0)]
        result = run(uops, config_for(PinningMode.EARLY))
        assert result.core_stats[0]["retired"] == 4

    def test_wd_one_is_slower_or_equal(self):
        """§9.2.3: shrinking W_d to 1 cannot help."""
        workload = spec17_workload("bwaves_r", instructions=1200)
        wd2 = run(workload, config_for(PinningMode.EARLY, w_d=2))
        wd1 = run(workload, config_for(PinningMode.EARLY, w_d=1,
                                       dir_cst_records=1))
        assert wd1.cycles >= wd2.cycles


class TestStarvationHandling:
    def _contended_workload(self):
        """Core 1 keeps loading (and pinning) a line core 0 keeps writing."""
        hot = 0x7000
        writer = Trace([store(i, hot) if i % 2 == 0 else alu(i)
                        for i in range(60)])
        reader_uops = []
        for i in range(120):
            reader_uops.append(load(i, hot) if i % 2 == 0 else alu(i))
        return Workload([writer, Trace(reader_uops)], name="contend")

    @pytest.mark.parametrize("mode", [PinningMode.LATE, PinningMode.EARLY])
    def test_contended_writes_complete(self, mode):
        config = config_for(mode, num_cores=2)
        result = run(self._contended_workload(), config)
        assert result.core_stats[0]["retired"] == 60
        assert result.core_stats[1]["retired"] == 120

    def test_cpt_blocks_repinning_under_contention(self):
        config = config_for(PinningMode.EARLY, num_cores=2)
        result = run(self._contended_workload(), config)
        # deferred writes must have occurred and eventually cleared
        assert result.mem_stats.get("write_retries", 0) >= 0
