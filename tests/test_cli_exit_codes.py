"""Exit codes are part of the CLI contract: 0 only on full success,
nonzero on any failure — so CI jobs and scripts can gate on them
without parsing output.  Also covers ``repro chaos --json`` and the new
``serve``/``submit`` argument surfaces."""

import json

import pytest

from repro.cli import main


class TestChaosExitCodes:
    def test_passing_campaign_exits_zero_and_emits_json(self, capsys):
        rc = main(["chaos", "--seeds", "1", "--workloads", "mcf_r",
                   "--schemes", "unsafe", "--instructions", "600",
                   "--threads", "1", "--no-checkpoint-check", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True
        assert report["schemes"] == ["unsafe"]
        assert report["service_url"] is None
        assert report["cells"][0]["seed_runs"][0]["ok"] is True

    def test_json_report_matches_out_file(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        rc = main(["chaos", "--seeds", "1", "--workloads", "mcf_r",
                   "--schemes", "unsafe", "--instructions", "600",
                   "--threads", "1", "--no-checkpoint-check", "--json",
                   "--out", str(out)])
        assert rc == 0
        stdout_report = json.loads(capsys.readouterr().out)
        assert json.loads(out.read_text()) == stdout_report

    def test_bad_arguments_exit_nonzero(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--seeds", "0", "--workloads", "mcf_r",
                  "--schemes", "unsafe"])
        with pytest.raises(SystemExit):
            main(["chaos", "--workloads", "", "--schemes", "unsafe"])

    def test_unknown_workload_exits_nonzero(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["chaos", "--seeds", "1", "--workloads", "nosuch_r",
                  "--schemes", "unsafe", "--no-checkpoint-check"])


class TestAttackExitCodes:
    """``repro attack``: 0 matrix matches, 1 unexpected leak/block or
    undetected mutant, 2 tool error — distinct codes so CI can tell
    "defense regressed" from "campaign broke"."""

    ARGS = ["attack", "--seeds", "1", "--schemes", "unsafe,stt-comp",
            "--classes", "secret_reg", "--no-self-test"]

    def test_matching_matrix_exits_zero_and_emits_json(self, capsys):
        rc = main(self.ARGS + ["--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True
        assert report["schemes"] == ["unsafe", "stt-comp"]
        cells = {(c["attack"], c["scheme"]): c for c in report["cells"]}
        assert cells[("secret_reg", "unsafe")]["verdict"] == "leaks"
        assert cells[("secret_reg", "stt-comp")]["verdict"] == "leaks"

    def test_out_file_is_the_canonical_matrix_artifact(self, capsys,
                                                       tmp_path):
        out = tmp_path / "matrix.json"
        rc = main(self.ARGS + ["--json", "--out", str(out)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        artifact = json.loads(out.read_text())
        assert artifact["format"] == 1
        assert artifact["matrix"]["secret_reg"]["stt-comp"] == "leaks"
        for cell in report["cells"]:
            assert artifact["matrix"][cell["attack"]][cell["scheme"]] \
                == cell["verdict"]

    def test_verdict_drift_is_exit_one(self, capsys, monkeypatch):
        from repro.security import campaign
        monkeypatch.setattr(campaign, "expected_verdict",
                            lambda attack, scheme: "blocks")
        rc = main(self.ARGS)
        assert rc == 1
        assert "expected blocks, observed leaks" \
            in capsys.readouterr().out

    def test_bad_arguments_exit_nonzero(self):
        with pytest.raises(SystemExit, match="unknown scheme"):
            main(["attack", "--schemes", "nosuch"])
        with pytest.raises(SystemExit, match="unknown attack"):
            main(["attack", "--classes", "nosuch"])
        with pytest.raises(SystemExit, match="seeds"):
            main(["attack", "--seeds", "0"])

    def test_internal_error_is_exit_two(self, capsys, monkeypatch):
        from repro.security import campaign
        def boom(*_args, **_kwargs):
            raise RuntimeError("worker exploded")
        monkeypatch.setattr(campaign, "run_campaign", boom)
        rc = main(self.ARGS)
        assert rc == 2
        assert "internal error" in capsys.readouterr().err


class TestVerifyExitCodes:
    def test_lint_finding_is_exit_one(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nnow = time.time()\n")
        assert main(["verify", "lint", str(dirty)]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_lint_clean_is_exit_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main(["verify", "lint", str(clean)]) == 0

    def test_lint_missing_path_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["verify", "lint", "/no/such/path"])


class TestAnalyzeExitCodes:
    """``repro verify analyze``: 0 clean, 1 findings, 2 internal error —
    distinct codes so CI can tell "contract violated" from "tool broke"."""

    def test_clean_tree_is_exit_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main(["verify", "analyze", str(clean)]) == 0

    def test_findings_are_exit_one(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nnow = time.time()\n")
        assert main(["verify", "analyze", str(dirty)]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_internal_error_is_exit_two(self, tmp_path, capsys,
                                        monkeypatch):
        from repro.verify.passes.lint_pass import LintPass

        def boom(self, ctx):
            raise RuntimeError("synthetic pass crash")

        monkeypatch.setattr(LintPass, "run", boom)
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main(["verify", "analyze", str(clean)]) == 2
        assert "internal error" in capsys.readouterr().err

    def test_missing_path_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["verify", "analyze", "/no/such/path"])

    def test_unknown_pass_exits_nonzero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        with pytest.raises(SystemExit, match="unknown pass"):
            main(["verify", "analyze", str(clean),
                  "--passes", "nosuch-pass"])

    def test_json_report_round_trips(self, tmp_path, capsys):
        from repro.verify.passes import Report

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nnow = time.time()\n")
        rc = main(["verify", "analyze", str(dirty), "--json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["summary"]["errors"] >= 1
        report = Report.from_doc(doc)
        assert report.to_doc() == doc
        assert [f.rule for f in report.findings] \
            == [f["rule"] for f in doc["findings"]]

    def test_json_matches_out_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nnow = time.time()\n")
        main(["verify", "analyze", str(dirty), "--json",
              "--out", str(out)])
        stdout_doc = json.loads(capsys.readouterr().out)
        assert json.loads(out.read_text()) == stdout_doc


class TestBenchExitCodes:
    def test_unknown_scheme_exits_nonzero(self):
        with pytest.raises(SystemExit, match="unknown scheme"):
            main(["bench", "--apps", "leela_r", "--schemes", "nosuch",
                  "--instructions", "200", "--no-serial", "--out", ""])


class TestServeRingExitCodes:
    """Ring-config mistakes must die at argument time with a clear
    message — never bind a port, never write a journal."""

    def test_ring_without_shard_index_exits(self):
        with pytest.raises(SystemExit, match="--shard-index"):
            main(["serve", "--ring", "http://a:1,http://b:1"])

    def test_shard_index_without_ring_exits(self):
        with pytest.raises(SystemExit, match="--ring"):
            main(["serve", "--shard-index", "0"])

    def test_shard_index_out_of_range_exits(self):
        with pytest.raises(SystemExit, match="out of range"):
            main(["serve", "--ring", "http://a:1,http://b:1",
                  "--shard-index", "2"])

    def test_non_http_member_exits(self):
        with pytest.raises(SystemExit, match="not an http"):
            main(["serve", "--ring", "a:1,http://b:1",
                  "--shard-index", "0"])

    def test_duplicate_members_exit(self):
        with pytest.raises(SystemExit, match="distinct"):
            main(["serve", "--ring", "http://a:1,http://a:1/",
                  "--shard-index", "0"])

    def test_empty_ring_exits(self):
        with pytest.raises(SystemExit, match="repro serve"):
            main(["serve", "--ring", ",", "--shard-index", "0"])


class TestSubmitExitCodes:
    def test_invalid_spec_rejected_before_any_network(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["submit", "nosuch_r"])
        with pytest.raises(SystemExit):
            main(["submit", "mcf_r", "--chaos", "{not json"])

    def test_unreachable_service_is_exit_one(self, capsys, monkeypatch):
        # shrink the client's retry schedule so the failure is quick
        from repro.service import client as client_mod
        monkeypatch.setattr(
            client_mod.ServiceClient, "__init__",
            lambda self, base_url="", **_kw: (
                setattr(self, "base_url", base_url.rstrip("/")),
                setattr(self, "retries", 0),
                setattr(self, "backoff_s", 0.01),
                setattr(self, "backoff_cap_s", 0.01),
                setattr(self, "timeout_s", 1.0),
                setattr(self, "_rng", __import__("random").Random(0)),
            ) and None)
        rc = main(["submit", "mcf_r", "--url", "http://127.0.0.1:9",
                   "--instructions", "300"])
        assert rc == 1
        assert "repro submit" in capsys.readouterr().err

    def test_bad_fabric_ring_exits_before_network(self):
        with pytest.raises(SystemExit, match="repro submit"):
            main(["submit", "mcf_r", "--fabric", "127.0.0.1:9"])

    def test_unreachable_fabric_is_exit_one(self, capsys, monkeypatch):
        # every shard client inherits the shrunk retry schedule; the
        # whole-route failure surfaces as the documented 503
        # shard-unavailable ServiceError, which maps to exit 1
        from repro.service import client as client_mod
        monkeypatch.setattr(
            client_mod.ServiceClient, "__init__",
            lambda self, base_url="", **_kw: (
                setattr(self, "base_url", base_url.rstrip("/")),
                setattr(self, "retries", 0),
                setattr(self, "backoff_s", 0.01),
                setattr(self, "backoff_cap_s", 0.01),
                setattr(self, "timeout_s", 1.0),
                setattr(self, "_rng", __import__("random").Random(0)),
            ) and None)
        rc = main(["submit", "mcf_r", "--instructions", "300",
                   "--fabric", "http://127.0.0.1:9,http://127.0.0.1:11"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "repro submit" in err
        assert "unreachable" in err


class TestBenchCompareExitCodes:
    """``repro bench --compare``: 0 comparable and clean, 1 ran and
    found a regression, 2 records not comparable (disjoint scheme or
    app sets) — so CI can tell "engine regressed" from "wrong sweep"."""

    @staticmethod
    def _record(path, schemes, apps=("mcf_r",), speedups=None):
        per_scheme = {}
        for i, label in enumerate(schemes):
            cells = {app: {"speedup": (speedups or {}).get(
                         (label, app), 2.0 + i)}
                     for app in apps}
            speedup = 1.0
            for cell in cells.values():
                speedup *= cell["speedup"]
            speedup **= 1.0 / len(cells)
            per_scheme[label] = {"apps": cells,
                                 "speedup": round(speedup, 3)}
        path.write_text(json.dumps({
            "bench": "hotloop",
            "hot_loop": {"apps": list(apps),
                         "per_scheme": per_scheme},
        }))
        return str(path)

    def test_identical_records_exit_zero(self, tmp_path, capsys):
        old = self._record(tmp_path / "old.json", ["unsafe", "dom-ep"])
        new = self._record(tmp_path / "new.json", ["unsafe", "dom-ep"])
        assert main(["bench", "--compare", old, new]) == 0
        assert "no per-scheme regressions" in capsys.readouterr().out

    def test_regression_is_exit_one(self, tmp_path, capsys):
        old = self._record(tmp_path / "old.json", ["dom-ep"],
                           speedups={("dom-ep", "mcf_r"): 4.0})
        new = self._record(tmp_path / "new.json", ["dom-ep"],
                           speedups={("dom-ep", "mcf_r"): 2.0})
        assert main(["bench", "--compare", old, new]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_disjoint_schemes_exit_two(self, tmp_path, capsys):
        old = self._record(tmp_path / "old.json", ["dom-ep", "dom-lp"])
        new = self._record(tmp_path / "new.json", ["stt-ep", "stt-lp"])
        assert main(["bench", "--compare", old, new]) == 2
        err = capsys.readouterr().err
        assert "share no hot-loop scheme" in err
        assert "dom-ep" in err and "stt-ep" in err

    def test_disjoint_apps_exit_two(self, tmp_path, capsys):
        old = self._record(tmp_path / "old.json", ["dom-ep"],
                           apps=("mcf_r",))
        new = self._record(tmp_path / "new.json", ["dom-ep"],
                           apps=("xz_r",))
        assert main(["bench", "--compare", old, new]) == 2
        err = capsys.readouterr().err
        assert "share no hot-loop app" in err
        assert "--hot-apps" in err

    def test_missing_hot_loop_section_exit_two(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        old.write_text(json.dumps({"bench": "hotloop"}))
        new = self._record(tmp_path / "new.json", ["dom-ep"])
        assert main(["bench", "--compare", str(old), new]) == 2
        assert "hot_loop.per_scheme" in capsys.readouterr().err

    def test_overlapping_apps_compare_shared_subset(self, tmp_path,
                                                    capsys):
        # a broadened sweep (new app added) must not manufacture a
        # phantom regression out of the new app's different mix: the
        # per-scheme ratio is computed over the shared apps only
        old = self._record(tmp_path / "old.json", ["dom-ep"],
                           apps=("mcf_r",),
                           speedups={("dom-ep", "mcf_r"): 4.0})
        new = self._record(tmp_path / "new.json", ["dom-ep"],
                           apps=("mcf_r", "xz_r"),
                           speedups={("dom-ep", "mcf_r"): 4.0,
                                     ("dom-ep", "xz_r"): 1.5})
        assert main(["bench", "--compare", old, new]) == 0
        assert "no per-scheme regressions" in capsys.readouterr().out
