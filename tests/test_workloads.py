"""Workload profiles and the synthetic trace generator."""

import pytest

from repro.isa.uops import OpClass
from repro.common.errors import ConfigError
from repro.workloads import (PARALLEL_NAMES, PARALLEL_PROFILES,
                             PARSEC_NAMES, SPEC17_NAMES, SPEC17_PROFILES,
                             SPLASH2_NAMES, WorkloadProfile, build_trace,
                             build_workload, parallel_profile,
                             parallel_workload, spec17_profile,
                             spec17_workload)


class TestProfileTables:
    def test_spec17_has_21_benchmarks(self):
        """The paper runs 21 of 23 (omnetpp/imagick excluded)."""
        assert len(SPEC17_NAMES) == 21
        assert "omnetpp_r" not in SPEC17_NAMES
        assert "imagick_r" not in SPEC17_NAMES

    def test_parallel_suite_matches_artifact(self):
        """13 SPLASH2 + 10 PARSEC = 23 parallel applications."""
        assert len(SPLASH2_NAMES) == 13
        assert len(PARSEC_NAMES) == 10
        assert len(PARALLEL_NAMES) == 23

    def test_all_profiles_validate(self):
        for profile in list(SPEC17_PROFILES.values()) \
                + list(PARALLEL_PROFILES.values()):
            profile.validate()

    def test_memory_bound_apps_have_high_miss_fractions(self):
        for name in ("bwaves_r", "fotonik3d_r", "lbm_r", "mcf_r"):
            assert spec17_profile(name).l1_miss_frac > 0.08

    def test_branchy_apps_mispredict_more(self):
        for name in ("leela_r", "exchange2_r", "deepsjeng_r"):
            assert spec17_profile(name).mispredict_rate > 0.05
        assert spec17_profile("bwaves_r").mispredict_rate < 0.01

    def test_pointer_chasers_have_dependent_loads(self):
        assert spec17_profile("mcf_r").dependent_load_frac > 0.3
        assert parallel_profile("x264").dependent_load_frac > 0.4

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            spec17_profile("nonexistent")
        with pytest.raises(KeyError):
            parallel_profile("nonexistent")

    def test_profile_validation_rejects_bad_mix(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="bad", load_frac=0.6, store_frac=0.5,
                            branch_frac=0.2).validate()
        with pytest.raises(ConfigError):
            WorkloadProfile(name="bad", mispredict_rate=1.5).validate()
        with pytest.raises(ConfigError):
            WorkloadProfile(name="bad", warm_frac=0.7,
                            stream_frac=0.7).validate()

    def test_scaled_returns_modified_copy(self):
        base = spec17_profile("leela_r")
        scaled = base.scaled(warm_frac=0.5)
        assert scaled.warm_frac == 0.5
        assert base.warm_frac != 0.5
        assert scaled.name == base.name


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        a = build_trace(spec17_profile("gcc_r"), seed=3, instructions=500)
        b = build_trace(spec17_profile("gcc_r"), seed=3, instructions=500)
        assert len(a) == len(b)
        assert all(x.opclass is y.opclass and x.addr == y.addr
                   and x.deps == y.deps for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = build_trace(spec17_profile("gcc_r"), seed=3, instructions=500)
        b = build_trace(spec17_profile("gcc_r"), seed=4, instructions=500)
        assert any(x.opclass is not y.opclass or x.addr != y.addr
                   for x, y in zip(a, b))

    def test_mix_tracks_profile(self):
        profile = spec17_profile("gcc_r")
        trace = build_trace(profile, instructions=5000)
        mix = trace.mix()
        assert mix["ld"] == pytest.approx(profile.load_frac, abs=0.03)
        assert mix["st"] == pytest.approx(profile.store_frac, abs=0.03)
        assert mix["br"] == pytest.approx(profile.branch_frac, abs=0.03)

    def test_mispredict_rate_tracks_profile(self):
        profile = spec17_profile("leela_r")
        trace = build_trace(profile, instructions=5000)
        branches = [u for u in trace if u.is_branch]
        rate = sum(u.mispredicted for u in branches) / len(branches)
        assert rate == pytest.approx(profile.mispredict_rate, abs=0.03)

    def test_dependent_loads_present(self):
        trace = build_trace(spec17_profile("mcf_r"), instructions=3000)
        loads = [u for u in trace if u.is_load]
        load_indices = {u.index for u in loads}
        dependent = [u for u in loads
                     if any(d in load_indices for d in u.deps)]
        assert len(dependent) / len(loads) > 0.2

    def test_streaming_profile_touches_fresh_lines(self):
        streaming = spec17_profile("lbm_r")
        trace = build_trace(streaming, instructions=3000)
        # stream lines are touched once: footprint much larger than pools
        assert trace.footprint_lines() > streaming.hot_lines

    def test_single_thread_has_no_shared_accesses(self):
        trace = build_trace(parallel_profile("fft"), thread_id=0,
                            num_threads=1, instructions=2000)
        assert all(u.addr < 0x4000_0000 or u.addr >= 0x5000_0000 + 0x1000
                   or u.addr < 0x5000_0000
                   for u in trace if u.addr is not None)


class TestParallelWorkloads:
    def test_thread_count(self):
        workload = parallel_workload("fft", num_threads=4,
                                     instructions_per_thread=300)
        assert workload.num_threads == 4

    def test_threads_share_lines(self):
        workload = parallel_workload("radiosity", num_threads=4,
                                     instructions_per_thread=2000)
        footprints = []
        for trace in workload.traces:
            footprints.append({u.addr >> 6 for u in trace
                               if u.addr is not None})
        shared = footprints[0] & footprints[1]
        assert shared, "threads must touch common lines"

    def test_barriers_equal_across_threads(self):
        workload = parallel_workload("ocean_cp", num_threads=8,
                                     instructions_per_thread=1000)
        counts = [trace.count(OpClass.BARRIER) for trace in workload.traces]
        assert len(set(counts)) == 1
        assert counts[0] == parallel_profile("ocean_cp").barriers

    def test_lock_sections_emit_atomic_release_pairs(self):
        workload = parallel_workload("fluidanimate", num_threads=2,
                                     instructions_per_thread=4000)
        trace = workload.traces[0]
        atomics = [u for u in trace if u.opclass is OpClass.ATOMIC]
        assert atomics, "lock-heavy profile must contain atomics"
        for atomic in atomics:
            releases = [u for u in trace
                        if u.is_store and u.addr == atomic.addr
                        and u.index > atomic.index]
            assert releases, "every acquire needs a release store"

    def test_spec17_workload_is_single_threaded(self):
        assert spec17_workload("namd_r", instructions=100).num_threads == 1

    def test_thread_private_pools_disjoint(self):
        workload = build_workload(parallel_profile("fft"), num_threads=2,
                                  instructions_per_thread=1000)
        privates = []
        for trace in workload.traces:
            privates.append({u.addr for u in trace
                             if u.addr is not None
                             and u.addr < 0x4000_0000})
        assert not (privates[0] & privates[1])
