"""Calibration: profiles must deliver the characteristics they promise."""

import pytest

from repro.workloads import spec17_profile, parallel_profile
from repro.workloads.calibrate import calibrate


class TestCalibration:
    def test_mix_tracks_targets(self):
        report = calibrate(spec17_profile("gcc_r"), instructions=4000)
        assert report.mix_error() < 0.03

    def test_low_miss_profile_achieves_low_miss_rate(self):
        report = calibrate(spec17_profile("exchange2_r"),
                           instructions=4000)
        assert report.l1_load_miss_rate < 0.05

    def test_high_miss_profile_achieves_high_miss_rate(self):
        low = calibrate(spec17_profile("exchange2_r"), instructions=4000)
        high = calibrate(spec17_profile("bwaves_r"), instructions=4000)
        assert high.l1_load_miss_rate > low.l1_load_miss_rate + 0.05

    def test_mispredict_rate_achieved(self):
        report = calibrate(spec17_profile("leela_r"), instructions=4000)
        assert report.mispredict_per_branch \
            == pytest.approx(report.profile.mispredict_rate, abs=0.03)

    def test_pointer_chaser_dependence(self):
        report = calibrate(spec17_profile("mcf_r"), instructions=4000)
        assert report.load_dependence_frac > 0.25

    def test_multithreaded_calibration(self):
        report = calibrate(parallel_profile("fft"), instructions=800,
                           num_threads=4)
        assert report.unsafe_cpi > 0
        assert 0 <= report.l1_load_miss_rate <= 1

    def test_summary_mentions_name_and_targets(self):
        report = calibrate(spec17_profile("namd_r"), instructions=1000)
        text = report.summary()
        assert "namd_r" in text and "target" in text

    def test_every_spec17_profile_is_roughly_calibrated(self):
        """Bulk sanity: no profile drifts wildly from its intent."""
        from repro.workloads import SPEC17_NAMES
        for name in SPEC17_NAMES[::4]:   # sample every 4th for speed
            report = calibrate(spec17_profile(name), instructions=2500)
            assert report.mix_error() < 0.04, name
            assert report.miss_rate_error() > -0.05, name
