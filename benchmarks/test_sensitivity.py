"""Design-space sensitivity: how Pinned Loads' benefit scales.

Not a paper figure, but the ablations DESIGN.md §6 calls out: the benefit
of Early Pinning should grow with memory latency (more MLP to recover)
and with window size (more loads to overlap), and the W_L1 (L1
associativity) budget bounds how many lines one set can pin.
"""

from dataclasses import replace

import pytest

from harness import SPEC_SWEEP_APPS, base_config, run, write_result
from repro.analysis.tables import format_stat_table
from repro.common.params import (CacheParams, CoreParams, DefenseKind,
                                 PinningMode, ThreatModel)
from repro.common.stats import geomean


def _ep_benefit(config) -> float:
    """Fraction of the Fence-Comp overhead that EP removes (geomean over
    the representative apps)."""
    comp_cfg = config.with_defense(DefenseKind.FENCE, ThreatModel.MCV,
                                   PinningMode.NONE)
    ep_cfg = config.with_defense(DefenseKind.FENCE, ThreatModel.MCV,
                                 PinningMode.EARLY)
    unsafe_cfg = config.with_defense(DefenseKind.UNSAFE, ThreatModel.MCV)
    ratios = []
    for app in SPEC_SWEEP_APPS:
        unsafe = run(unsafe_cfg, app, "spec17").cycles
        comp = run(comp_cfg, app, "spec17").cycles / unsafe
        ep = run(ep_cfg, app, "spec17").cycles / unsafe
        removed = (comp - ep) / max(comp - 1.0, 1e-9)
        ratios.append(max(min(removed, 1.0), 1e-3))
    return geomean(ratios)


def _overhead(config, defense, pinning) -> float:
    cfg = config.with_defense(defense, ThreatModel.MCV, pinning)
    unsafe_cfg = config.with_defense(DefenseKind.UNSAFE, ThreatModel.MCV)
    cpis = [run(cfg, app, "spec17").cycles
            / run(unsafe_cfg, app, "spec17").cycles
            for app in SPEC_SWEEP_APPS]
    return (geomean(cpis) - 1.0) * 100.0


def test_dram_latency_sensitivity(benchmark):
    def sweep():
        rows = {}
        for dram in (50, 100, 200):
            config = replace(base_config("spec17"), dram_latency=dram)
            rows[f"dram_{dram}"] = {
                "fence_comp_pct": _overhead(config, DefenseKind.FENCE,
                                            PinningMode.NONE),
                "fence_ep_pct": _overhead(config, DefenseKind.FENCE,
                                          PinningMode.EARLY),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("sensitivity_dram.txt", format_stat_table(
        "Sensitivity: Fence overhead vs DRAM latency", rows))
    # note: the *relative* Comp overhead can shrink with DRAM latency
    # (the Unsafe baseline gets memory-bound too); the robust invariant
    # is that EP removes a large share of the Comp overhead everywhere
    for dram in (50, 100, 200):
        row = rows[f"dram_{dram}"]
        assert row["fence_ep_pct"] < row["fence_comp_pct"] * 0.75


def test_rob_size_sensitivity(benchmark):
    def sweep():
        rows = {}
        for rob in (64, 192, 384):
            config = replace(base_config("spec17"),
                             core=CoreParams(rob_entries=rob))
            rows[f"rob_{rob}"] = {
                "fence_comp_pct": _overhead(config, DefenseKind.FENCE,
                                            PinningMode.NONE),
                "fence_ep_pct": _overhead(config, DefenseKind.FENCE,
                                          PinningMode.EARLY),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("sensitivity_rob.txt", format_stat_table(
        "Sensitivity: Fence overhead vs ROB size", rows))
    for rob in (64, 192, 384):
        row = rows[f"rob_{rob}"]
        assert row["fence_ep_pct"] < row["fence_comp_pct"]


def test_l1_associativity_sensitivity(benchmark):
    """W_L1 is the L1 associativity (§5.1.4): fewer ways = fewer pinnable
    lines per set, so EP loses headroom."""
    def sweep():
        rows = {}
        for ways, records in ((2, 2), (4, 4), (8, 8)):
            config = replace(
                base_config("spec17"),
                l1d=CacheParams(size_bytes=32 * 1024, ways=ways,
                                latency=2))
            config = replace(config, pinning=replace(
                config.pinning, l1_cst_records=records))
            rows[f"ways_{ways}"] = {
                "fence_ep_pct": _overhead(config, DefenseKind.FENCE,
                                          PinningMode.EARLY),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("sensitivity_wl1.txt", format_stat_table(
        "Sensitivity: Fence+EP overhead vs L1 associativity (W_L1)",
        rows))
    # 8-way (Table 1) must not be worse than a 2-way machine for EP
    assert rows["ways_8"]["fence_ep_pct"] \
        <= rows["ways_2"]["fence_ep_pct"] + 3.0
