"""Extension study: Pinned Loads on an invisible-speculation defense.

The paper's §4 lists invisible-execution schemes (InvisiSpec-class) among
the baselines Pinned Loads can augment but does not evaluate one.  This
benchmark runs our InvisiSpec-like scheme through the same Comp / LP /
EP / Spectre grid on the SPEC17 suite: earlier VPs start validations
earlier and overlap them, so pinning recovers most of the double-access
cost under the Comprehensive model.
"""

import pytest

from harness import (EXTENSIONS, grid_normalized_cpis, run, base_config,
                     suite_apps, unsafe_run, write_result)
from repro.analysis.tables import format_normalized_cpi_table
from repro.common.params import DefenseKind, PinningMode, ThreatModel
from repro.common.stats import geomean

SUITE = "spec17"
CELLS = [("comp", ThreatModel.MCV, PinningMode.NONE),
         ("lp", ThreatModel.MCV, PinningMode.LATE),
         ("ep", ThreatModel.MCV, PinningMode.EARLY),
         ("spectre", ThreatModel.CTRL, PinningMode.NONE)]


def _panel():
    apps = suite_apps(SUITE)
    base = base_config(SUITE)
    data = {}
    for app in apps:
        unsafe = unsafe_run(app, SUITE)
        row = {}
        for label, threat, pin in CELLS:
            config = base.with_defense(DefenseKind.INVISI, threat, pin)
            row[label] = run(config, app, SUITE).cycles / unsafe.cycles
        data[app] = row
    return apps, data


def test_ext_invisispec_grid(benchmark):
    apps, data = benchmark.pedantic(_panel, rounds=1, iterations=1)
    table = format_normalized_cpi_table(
        "Extension: invisible speculation (InvisiSpec-class) x Pinned "
        "Loads, SPEC17", apps, [c[0] for c in CELLS], data)
    write_result("ext_invisispec.txt", table)
    means = {label: geomean([data[app][label] for app in apps])
             for label, _, _ in CELLS}
    # the same headline shape as the paper's three schemes
    assert means["comp"] > means["lp"]
    assert means["comp"] > means["ep"]
    assert means["ep"] >= means["spectre"] * 0.9
    # and pinning removes at least a third of the Comp overhead
    assert (means["ep"] - 1) < (means["comp"] - 1) * 0.67
