"""§9.2.3: smaller directory/LLC partition size (W_d = 1 vs 2).

The paper shrinks the per-core reserved directory/LLC lines per set from 2
to 1 while keeping the CST size, and finds every scheme's EP overhead gets
slightly worse — so W_d = 2 is the right default.
"""

import pytest

from harness import (SCHEMES, SPEC_SWEEP_APPS, PARALLEL_SWEEP_APPS,
                     pinned_result, unsafe_run, write_result)
from repro.analysis.tables import format_stat_table
from repro.common.params import DefenseKind, PinningMode
from repro.common.stats import geomean

DEFENSES = {"fence": DefenseKind.FENCE, "dom": DefenseKind.DOM,
            "stt": DefenseKind.STT}


def _overhead(scheme, suite, apps, w_d):
    cpis = []
    for app in apps:
        result = pinned_result(app, suite, DEFENSES[scheme],
                               PinningMode.EARLY, w_d=w_d,
                               dir_cst_records=w_d)
        cpis.append(result.cycles / unsafe_run(app, suite).cycles)
    return (geomean(cpis) - 1.0) * 100.0


def _sweep():
    rows = {}
    for scheme in SCHEMES:
        for suite, apps in (("spec17", SPEC_SWEEP_APPS),
                            ("parallel", PARALLEL_SWEEP_APPS)):
            rows[f"{scheme} {suite}"] = {
                "wd2_overhead_pct": _overhead(scheme, suite, apps, w_d=2),
                "wd1_overhead_pct": _overhead(scheme, suite, apps, w_d=1),
            }
    return rows


def test_sec923_wd_partition(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_stat_table(
        "Sec 9.2.3: EP overhead with W_d = 2 vs W_d = 1", rows)
    write_result("sec923_wd.txt", table)
    for label, row in rows.items():
        # W_d = 1 is never better than W_d = 2 (small tolerance for noise)
        assert row["wd1_overhead_pct"] >= row["wd2_overhead_pct"] - 3.0, \
            label
    # and it is strictly worse somewhere (the paper's conclusion that
    # keeping W_d = 2 matters)
    assert any(row["wd1_overhead_pct"] > row["wd2_overhead_pct"] + 0.5
               for row in rows.values())
