"""§9.1.3: network traffic overhead of Pinned Loads.

The paper reports that enabling Pinned Loads has no significant impact on
traffic because very few writes and evictions retry due to pinning: at
worst 14.8 retried writes and 0.05 retried evictions per million
instructions.  We measure the same counters across the parallel suite
under EP and compare total message counts against the unextended scheme.
"""

import pytest

from harness import (PARALLEL_INSNS, PARALLEL_THREADS, base_config,
                     par_workload, run, suite_apps, write_result)
from repro.analysis.tables import format_stat_table
from repro.common.params import DefenseKind, PinningMode, ThreatModel


def _traffic_rows():
    rows = {}
    base = base_config("parallel")
    for app in suite_apps("parallel"):
        comp = run(base.with_defense(DefenseKind.DOM, ThreatModel.MCV,
                                     PinningMode.NONE), app, "parallel")
        ep = run(base.with_defense(DefenseKind.DOM, ThreatModel.MCV,
                                   PinningMode.EARLY), app, "parallel")
        insns = ep.instructions
        rows[app] = {
            "wr_retry_per_Mi": ep.mem_stats.get("write_retries", 0)
            * 1e6 / insns,
            "ev_retry_per_Mi": ep.mem_stats.get("eviction_retries", 0)
            * 1e6 / insns,
            "wr_retry_frac": (ep.mem_stats.get("write_retries", 0)
                              / max(ep.mem_stats.get("stores", 1), 1)),
            "msg_ratio_ep_vs_comp": (
                ep.network_stats.get("messages", 0)
                / max(comp.network_stats.get("messages", 1), 1)),
        }
    return rows


def test_sec913_network_traffic(benchmark):
    rows = benchmark.pedantic(_traffic_rows, rounds=1, iterations=1)
    table = format_stat_table(
        "Sec 9.1.3: Pinned Loads traffic overhead (DOM+EP, parallel suite)",
        rows)
    write_result("sec913_traffic.txt", table)
    worst_retry_frac = max(r["wr_retry_frac"] for r in rows.values())
    worst_ratio = max(r["msg_ratio_ep_vs_comp"] for r in rows.values())
    # shape: retried writes are rare.  The paper reports <= 14.8 per Minsn
    # on 50M-instruction runs; at our trace lengths the robust equivalent
    # is the retry-to-write ratio, which must stay well under 2%
    assert worst_retry_frac < 0.02
    # and total traffic is essentially unchanged
    assert worst_ratio < 1.25
