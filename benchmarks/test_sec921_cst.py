"""§9.2.1: Cache Shadow Table configuration sensitivity.

Measures (a) false-positive denial rates of the default CST geometry and
(b) the execution overhead of the chosen configuration against an infinite
CST, sweeping CST sizes on the representative app subset.
"""

import pytest

from harness import (SPEC_SWEEP_APPS, pinned_result, unsafe_run,
                     write_result)
from repro.analysis.tables import format_stat_table
from repro.common.params import DefenseKind, PinningMode
from repro.common.stats import geomean

#: (label, l1 entries, l1 records, dir entries, dir records)
CST_SIZES = [
    ("half", 6, 4, 20, 2),
    ("default", 12, 8, 40, 2),
    ("double", 24, 8, 80, 2),
    ("infinite", 12, 8, 40, 2),     # infinite_cst flag set below
]


def _sweep():
    rows = {}
    for label, l1e, l1r, dire, dirr in CST_SIZES:
        cpis = []
        fp_l1, fp_dir = [], []
        for app in SPEC_SWEEP_APPS:
            result = pinned_result(
                app, "spec17", DefenseKind.FENCE, PinningMode.EARLY,
                l1_cst_entries=l1e, l1_cst_records=l1r,
                dir_cst_entries=dire, dir_cst_records=dirr,
                infinite_cst=(label == "infinite"))
            cpis.append(result.cycles / unsafe_run(app, "spec17").cycles)
            stats = result.pinning_stats[0]
            fp_l1.append(stats.get("cst_l1_fp_rate", 0.0))
            fp_dir.append(stats.get("cst_dir_fp_rate", 0.0))
        rows[label] = {
            "geomean_cpi": geomean(cpis),
            "l1_fp_rate": sum(fp_l1) / len(fp_l1),
            "dir_fp_rate": sum(fp_dir) / len(fp_dir),
        }
    return rows


def test_sec921_cst_sensitivity(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_stat_table(
        "Sec 9.2.1: CST size sensitivity (Fence+EP, representative apps)",
        rows)
    write_result("sec921_cst.txt", table)
    # infinite CST never denies
    assert rows["infinite"]["l1_fp_rate"] == 0.0
    assert rows["infinite"]["dir_fp_rate"] == 0.0
    # bigger tables deny less
    assert rows["double"]["dir_fp_rate"] <= rows["half"]["dir_fp_rate"]
    # the chosen configuration costs only a little over infinite
    # (paper: +3.6% on average)
    overhead_vs_infinite = (rows["default"]["geomean_cpi"]
                            / rows["infinite"]["geomean_cpi"] - 1.0) * 100
    assert overhead_vs_infinite < 15.0
    # and monotone: default is no faster than infinite
    assert rows["default"]["geomean_cpi"] \
        >= rows["infinite"]["geomean_cpi"] * 0.999
