"""Figure 1: overhead added by each reason a load's VP is delayed.

A fence-based defense is run with the fence removed at four successively
later points (Ctrl / +Alias / +Exception / +MCV); the stacked differences
attribute the execution overhead per squash source.  The paper's finding —
that waiting out potential MCVs dominates — is asserted.
"""

import pytest

from harness import level_cycles, suite_apps, write_result
from repro.analysis.breakdown import geomean_stack
from repro.analysis.tables import format_breakdown_table
from repro.common.params import DefenseKind

SUITES = ("spec17", "splash2", "parsec")


def _suite_apps(suite):
    if suite == "spec17":
        return suite_apps("spec17")
    from repro.workloads import PARSEC_NAMES, SPLASH2_NAMES
    return list(SPLASH2_NAMES if suite == "splash2" else PARSEC_NAMES)


def _stack_for(suite):
    apps = _suite_apps(suite)
    lookup_suite = "spec17" if suite == "spec17" else "parallel"
    per_app = [level_cycles(app, lookup_suite, DefenseKind.FENCE)
               for app in apps]
    return geomean_stack(per_app)


def test_fig1_vp_condition_breakdown(benchmark):
    stacks = benchmark.pedantic(
        lambda: {suite: _stack_for(suite) for suite in SUITES},
        rounds=1, iterations=1)
    table = format_breakdown_table(
        "Figure 1: geomean execution overhead of Fence by VP condition",
        stacks)
    write_result("fig1.txt", table)
    for suite, stack in stacks.items():
        # the paper's central observation, per suite: the MCV condition
        # delays the VP far more than aliasing or exceptions, and more
        # than branch resolution
        assert stack["mcv"] > stack["alias"], suite
        assert stack["mcv"] > stack["exception"], suite
        assert stack["mcv"] > stack["ctrl"], suite
        assert stack["ctrl"] > 0, suite
