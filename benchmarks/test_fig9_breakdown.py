"""Figure 9: overhead breakdown by squash source for each defense scheme,
next to the total overheads of the LP- and EP-extended schemes.

Combines the Figure 1-style stacked bars (per scheme x suite) with the LP
and EP overheads from the Figure 7/8 grids — all runs shared through the
process-wide cache.
"""

import pytest

from harness import (SCHEMES, grid_normalized_cpis, level_cycles,
                     suite_apps, write_result)
from repro.analysis.breakdown import geomean_stack
from repro.analysis.tables import format_breakdown_table
from repro.common.params import DefenseKind
from repro.common.stats import geomean

DEFENSES = {"fence": DefenseKind.FENCE, "dom": DefenseKind.DOM,
            "stt": DefenseKind.STT}
SUITES = ("spec17", "parallel")


def _group(scheme: str, suite: str):
    apps = suite_apps(suite)
    stack = geomean_stack([level_cycles(app, suite, DEFENSES[scheme])
                           for app in apps])
    extras = {}
    for ext in ("lp", "ep"):
        cpis = [grid_normalized_cpis(app, suite)[f"{scheme}-{ext}"]
                for app in apps]
        extras[ext.upper()] = (geomean(cpis) - 1.0) * 100.0
    return stack, extras


def test_fig9_breakdown(benchmark):
    def build():
        stacks, extras = {}, {}
        for scheme in SCHEMES:
            for suite in SUITES:
                label = f"{scheme.upper()} {suite}"
                stacks[label], extras[label] = _group(scheme, suite)
        return stacks, extras

    stacks, extras = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_breakdown_table(
        "Figure 9: overhead breakdown (Comp) and LP/EP total overheads",
        stacks, extras)
    write_result("fig9.txt", table)
    for label, stack in stacks.items():
        comp_total = sum(stack.values())
        # LP and EP mainly remove the MCV share: the extended schemes must
        # land between the Ctrl-only floor and the full Comp overhead
        assert extras[label]["EP"] <= comp_total * 1.02, label
        assert extras[label]["LP"] <= comp_total * 1.02, label
        assert extras[label]["EP"] >= stack["ctrl"] * 0.5, label
        # the removed overhead comes out of the MCV share
        removed = comp_total - extras[label]["EP"]
        assert removed <= stack["mcv"] * 1.3 + 5.0, label
