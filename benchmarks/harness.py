"""Shared infrastructure for the benchmark harness.

Every figure/table benchmark builds on the same memoized runs (the Unsafe
baseline of Figure 7 is also the denominator of Figure 9, etc.), so runs
are cached process-wide via ``repro.sim.runner.GLOBAL_CACHE``.

Scale knobs (environment variables):

* ``REPRO_SPEC17_INSNS``   — instructions per SPEC17 trace (default 4000)
* ``REPRO_PARALLEL_INSNS`` — instructions per thread, SPLASH2/PARSEC
  (default 1000)
* ``REPRO_PARALLEL_THREADS`` — thread count for parallel suites (default 8,
  as in the paper)
* ``REPRO_JOBS``           — worker processes for grid-shaped benchmarks
  (default 1 = serial); results are bit-identical either way
* ``REPRO_CACHE_DIR``      — persistent result store; runs found there
  are reused instead of re-simulated (honored by ``GLOBAL_CACHE``)

The defaults regenerate every figure in a few minutes; raising them
tightens the statistics at proportional cost.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional

from repro import (DefenseKind, PinningMode, SystemConfig, ThreatModel,
                   parallel_workload, scheme_grid, spec17_workload)
from repro.analysis.breakdown import CONDITION_LEVELS
from repro.sim.executor import Executor, Task
from repro.sim.results import SimResult
from repro.sim.runner import GLOBAL_CACHE
from repro.workloads import PARALLEL_NAMES, SPEC17_NAMES

SPEC17_INSNS = int(os.environ.get("REPRO_SPEC17_INSNS", "4000"))
PARALLEL_INSNS = int(os.environ.get("REPRO_PARALLEL_INSNS", "1000"))
PARALLEL_THREADS = int(os.environ.get("REPRO_PARALLEL_THREADS", "8"))
JOBS = int(os.environ.get("REPRO_JOBS", "1"))
SEED = 1

#: Process-pool executor used to prefetch grid-shaped runs; ``None`` at
#: REPRO_JOBS=1 (the plain serial path needs no pool).
EXECUTOR: Optional[Executor] = Executor(jobs=JOBS) if JOBS > 1 else None

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Scheme presentation order of Figures 7/8/9.
SCHEMES = ("fence", "dom", "stt")
#: Extension presentation order of Figures 7/8 (Table 3).
EXTENSIONS = ("comp", "lp", "ep", "spectre")


@lru_cache(maxsize=None)
def spec_workload(name: str):
    return spec17_workload(name, instructions=SPEC17_INSNS, seed=SEED)


@lru_cache(maxsize=None)
def par_workload(name: str):
    return parallel_workload(name, num_threads=PARALLEL_THREADS,
                             instructions_per_thread=PARALLEL_INSNS,
                             seed=SEED)


def base_config(suite: str) -> SystemConfig:
    cores = 1 if suite == "spec17" else PARALLEL_THREADS
    return SystemConfig(num_cores=cores)


def workload_for(app: str, suite: str):
    return spec_workload(app) if suite == "spec17" else par_workload(app)


def suite_apps(suite: str) -> List[str]:
    return list(SPEC17_NAMES) if suite == "spec17" \
        else list(PARALLEL_NAMES)


def run(config: SystemConfig, app: str, suite: str) -> SimResult:
    # Figure/table numbers must come from uninstrumented runs; sanitized
    # runs belong to `repro verify trace` and
    # benchmarks/test_sanitizer_overhead.py (which times them on purpose).
    assert not config.sanitize, \
        "benchmark runs must not have the invariant sanitizer enabled"
    return GLOBAL_CACHE.run(config, workload_for(app, suite))


def prefetch(cells: List[SystemConfig], app: str, suite: str) -> None:
    """Fan uncached (config x this app) runs over the executor pool,
    depositing into ``GLOBAL_CACHE``.  Serial no-op at ``REPRO_JOBS=1``;
    a failed worker just leaves its cell cold for the serial path to
    re-raise."""
    if EXECUTOR is None:
        return
    workload = workload_for(app, suite)
    tasks = [Task(f"{suite}:{app}:{i}", config, workload)
             for i, config in enumerate(cells)]
    EXECUTOR.run_tasks(tasks, cache=GLOBAL_CACHE)


def unsafe_run(app: str, suite: str) -> SimResult:
    return run(base_config(suite), app, suite)


def grid_normalized_cpis(app: str, suite: str) -> Dict[str, float]:
    """Normalized CPI of every (scheme x extension) cell for one app."""
    base = base_config(suite)
    prefetch([base] + [base.with_defense(defense, threat, pinning)
                       for defense, threat, pinning
                       in scheme_grid().values()], app, suite)
    unsafe = unsafe_run(app, suite)
    table = {}
    for label, (defense, threat, pinning) in scheme_grid().items():
        result = run(base.with_defense(defense, threat, pinning), app,
                     suite)
        table[label] = result.cycles / unsafe.cycles
    return table


def level_cycles(app: str, suite: str, defense: DefenseKind,
                 ) -> Dict[str, int]:
    """Cycle counts at the four VP-condition levels plus Unsafe (Fig 1/9).

    The CTRL and MCV levels coincide with the Spectre and Comp grid cells,
    so they come from the shared cache for free.
    """
    base = base_config(suite)
    cycles = {"unsafe": unsafe_run(app, suite).cycles}
    for label, level in CONDITION_LEVELS:
        config = base.with_defense(defense, level, PinningMode.NONE)
        cycles[label] = run(config, app, suite).cycles
    return cycles


def pinned_result(app: str, suite: str, defense: DefenseKind,
                  mode: PinningMode, **pin_overrides) -> SimResult:
    """One (defense + pinning) run, optionally with modified Pinned Loads
    hardware parameters (CST geometry, W_d, CPT size, TSO rule...)."""
    from dataclasses import replace
    base = base_config(suite)
    config = base.with_defense(defense, ThreatModel.MCV, mode)
    if pin_overrides:
        config = replace(config,
                         pinning=replace(config.pinning, **pin_overrides))
    return run(config, app, suite)


def write_result(filename: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(text + "\n")
    print()
    print(text)


#: Representative subset for the parameter-sweep studies (one branchy app,
#: one miss-heavy app, one pointer chaser, one FP app), keeping sweep cost
#: bounded while spanning the workload axes.
SPEC_SWEEP_APPS = ["leela_r", "bwaves_r", "mcf_r", "namd_r"]
PARALLEL_SWEEP_APPS = ["fft", "raytrace", "radiosity", "x264"]
