"""Wall-clock cost of the runtime invariant sanitizer.

``SystemConfig(sanitize=True)`` wraps a handful of instance methods with
re-verification checks (see ``repro.verify.sanitizer``); this benchmark
quantifies the slowdown so the "opt-in only, never in benchmark runs"
policy (enforced by ``harness.run``) stays an informed decision, and
asserts the instrumentation is *behaviorally* free: simulated cycle
counts must be bit-identical with and without it.
"""

import time
from dataclasses import replace

from harness import base_config, par_workload, write_result
from repro.common.params import DefenseKind, PinningMode, ThreatModel
from repro.sim.runner import run_simulation

APPS = ["fft", "radix"]


def _timed_run(config, workload):
    start = time.perf_counter()
    result = run_simulation(config, workload)
    return result, time.perf_counter() - start


def test_sanitizer_overhead():
    rows = []
    for app in APPS:
        workload = par_workload(app)
        config = base_config("parallel").with_defense(
            DefenseKind.FENCE, ThreatModel.MCV, PinningMode.EARLY)
        plain, plain_s = _timed_run(config, workload)
        sanitized, sanitized_s = _timed_run(
            replace(config, sanitize=True), workload)
        assert sanitized.cycles == plain.cycles, \
            "the sanitizer must not perturb simulated time"
        rows.append((app, plain_s, sanitized_s,
                     sanitized_s / max(plain_s, 1e-9)))

    lines = ["sanitizer wall-clock overhead (fence/comp/ep)",
             f"{'app':<12}{'plain s':>10}{'sanitized s':>13}{'ratio':>8}"]
    for app, plain_s, sanitized_s, ratio in rows:
        lines.append(f"{app:<12}{plain_s:>10.3f}{sanitized_s:>13.3f}"
                     f"{ratio:>8.2f}")
    write_result("sanitizer_overhead.txt", "\n".join(lines))
