"""Table 1 / §9.2.4: storage, area, energy, and leakage of the CSTs.

Regenerates the CST hardware rows of Table 1 from the analytical SRAM
model (CACTI-lite).  Storage must match the paper exactly (444 B / 370 B);
area, read energy, and leakage must land on the published values within
the model's calibration tolerance.
"""

import pytest

from harness import write_result
from repro.analysis.area import cst_hardware_table
from repro.analysis.tables import format_stat_table

PAPER = {
    "l1_cst": {"bytes": 444, "area_mm2": 0.0008, "read_energy_pj": 0.6,
               "leakage_mw": 0.17},
    "dir_cst": {"bytes": 370, "area_mm2": 0.0005, "read_energy_pj": 0.4,
                "leakage_mw": 0.17},
}


def test_table1_cst_hardware(benchmark):
    table = benchmark.pedantic(cst_hardware_table, rounds=1, iterations=1)
    rows = {}
    for name in ("l1_cst", "dir_cst"):
        rows[name] = dict(table[name])
        rows[f"{name}_paper"] = dict(PAPER[name])
    text = format_stat_table(
        "Table 1: CST hardware cost at 22nm (model vs paper)", rows)
    write_result("table1_hw.txt", text)
    assert table["l1_cst"]["bytes"] == 444
    assert table["dir_cst"]["bytes"] == 370
    for name in ("l1_cst", "dir_cst"):
        assert table[name]["read_energy_pj"] \
            == pytest.approx(PAPER[name]["read_energy_pj"], rel=0.15)
        assert table[name]["leakage_mw"] \
            == pytest.approx(PAPER[name]["leakage_mw"], rel=0.25)
        assert table[name]["area_mm2"] \
            == pytest.approx(PAPER[name]["area_mm2"], abs=4e-4)
