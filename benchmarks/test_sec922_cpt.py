"""§9.2.2: Cannot-Pin Table size study.

With an ideal (unbounded) CPT, measure how many lines it actually holds on
the parallel suites (paper: average ~1, max 4-7), then confirm the default
4-entry CPT virtually never overflows.
"""

import pytest

from harness import (PARALLEL_SWEEP_APPS, pinned_result, suite_apps,
                     write_result)
from repro.analysis.tables import format_stat_table
from repro.common.params import DefenseKind, PinningMode


def _occupancy_rows():
    rows = {}
    for app in suite_apps("parallel"):
        ideal = pinned_result(app, "parallel", DefenseKind.DOM,
                              PinningMode.EARLY, ideal_cpt=True)
        sized = pinned_result(app, "parallel", DefenseKind.DOM,
                              PinningMode.EARLY, ideal_cpt=False)
        max_occ = max(stats.get("cpt_max_occupancy", 0)
                      for stats in ideal.pinning_stats.values())
        mean_occ = max(stats.get("cpt_mean_occupancy", 0.0)
                       for stats in ideal.pinning_stats.values())
        overflow = max(stats.get("cpt_overflow_rate", 0.0)
                       for stats in sized.pinning_stats.values())
        rows[app] = {"ideal_max": max_occ, "ideal_mean": mean_occ,
                     "overflow_rate_4entries": overflow}
    return rows


def test_sec922_cpt_occupancy(benchmark):
    rows = benchmark.pedantic(_occupancy_rows, rounds=1, iterations=1)
    table = format_stat_table(
        "Sec 9.2.2: CPT occupancy with an ideal CPT (DOM+EP, 8 threads)",
        rows)
    write_result("sec922_cpt.txt", table)
    worst_max = max(r["ideal_max"] for r in rows.values())
    worst_mean = max(r["ideal_mean"] for r in rows.values())
    worst_overflow = max(r["overflow_rate_4entries"] for r in rows.values())
    # paper: the CPT only ever needs to hold a handful of lines (max 4-7)
    # and the mean occupancy is around one line
    assert worst_max <= 8
    assert worst_mean <= 2.0
    # and the 4-entry CPT (Table 1) essentially never overflows
    assert worst_overflow <= 0.01
