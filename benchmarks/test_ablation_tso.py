"""Ablation (DESIGN.md §6): the aggressive-TSO refinement of §3.3.

The paper's evaluated Late Pinning exploits the TSO implementation in
which the oldest load in the ROB is never MCV-squashed, allowing two
outstanding loads (the oldest plus the pin-on-arrival one).  Under the
conservative rule, every load — including the oldest — must pin on data
arrival, collapsing LP to one outstanding pinned load at a time.  This
ablation quantifies that refinement.
"""

import pytest

from harness import SPEC_SWEEP_APPS, pinned_result, unsafe_run, write_result
from repro.analysis.tables import format_stat_table
from repro.common.params import DefenseKind, PinningMode
from repro.common.stats import geomean


def _sweep():
    rows = {}
    for mode, label in ((PinningMode.LATE, "lp"),
                        (PinningMode.EARLY, "ep")):
        for aggressive in (True, False):
            cpis = []
            for app in SPEC_SWEEP_APPS:
                result = pinned_result(app, "spec17", DefenseKind.FENCE,
                                       mode, aggressive_tso=aggressive)
                cpis.append(result.cycles
                            / unsafe_run(app, "spec17").cycles)
            key = f"{label}_{'aggressive' if aggressive else 'conservative'}"
            rows[key] = {"geomean_cpi": geomean(cpis),
                         "overhead_pct": (geomean(cpis) - 1) * 100}
    return rows


def test_ablation_aggressive_tso(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_stat_table(
        "Ablation: aggressive vs conservative TSO squash rule (Fence)",
        rows)
    write_result("ablation_tso.txt", table)
    # the oldest-load exemption must help Late Pinning (it enables the
    # second outstanding load of paper Fig. 2c-e)
    assert rows["lp_aggressive"]["geomean_cpi"] \
        <= rows["lp_conservative"]["geomean_cpi"] * 1.01
    # EP depends on it much less: pins happen pre-issue anyway
    lp_gain = (rows["lp_conservative"]["overhead_pct"]
               - rows["lp_aggressive"]["overhead_pct"])
    ep_gain = (rows["ep_conservative"]["overhead_pct"]
               - rows["ep_aggressive"]["overhead_pct"])
    assert lp_gain >= ep_gain - 3.0
