"""Figure 7: normalized CPI of SPEC17 programs.

Three panels (Fence, DOM, STT), each with the Comp / LP / EP / Spectre
configurations of Table 3, per application plus the geometric mean — the
rows/series of the paper's Figure 7.
"""

import pytest

from harness import (EXTENSIONS, SCHEMES, grid_normalized_cpis, suite_apps,
                     write_result)
from repro.analysis.tables import format_normalized_cpi_table
from repro.common.stats import geomean

SUITE = "spec17"


def _panel(scheme: str):
    apps = suite_apps(SUITE)
    data = {}
    for app in apps:
        cpis = grid_normalized_cpis(app, SUITE)
        data[app] = {ext: cpis[f"{scheme}-{ext}"] for ext in EXTENSIONS}
    return apps, data


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig7_panel(benchmark, scheme):
    apps, data = benchmark.pedantic(_panel, args=(scheme,), rounds=1,
                                    iterations=1)
    table = format_normalized_cpi_table(
        f"Figure 7 ({scheme.upper()}): SPEC17 normalized CPI vs Unsafe",
        apps, list(EXTENSIONS), data)
    write_result(f"fig7_{scheme}.txt", table)
    # shape checks mirroring the paper's headline observations
    means = {ext: geomean([data[app][ext] for app in apps])
             for ext in EXTENSIONS}
    assert means["comp"] >= means["lp"] >= means["ep"] * 0.99
    assert means["ep"] >= means["spectre"] * 0.95
    assert means["comp"] > 1.0
