"""Figure 8: normalized CPI of SPLASH2 and PARSEC programs (8 threads).

Same grid as Figure 7, on the multithreaded suites, where pinning also has
to survive coherence traffic: invalidation deferral, write retries, and
CPT inserts all occur here.
"""

import pytest

from harness import (EXTENSIONS, SCHEMES, grid_normalized_cpis, suite_apps,
                     write_result)
from repro.analysis.tables import format_normalized_cpi_table
from repro.common.stats import geomean

SUITE = "parallel"


def _panel(scheme: str):
    apps = suite_apps(SUITE)
    data = {}
    for app in apps:
        cpis = grid_normalized_cpis(app, SUITE)
        data[app] = {ext: cpis[f"{scheme}-{ext}"] for ext in EXTENSIONS}
    return apps, data


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig8_panel(benchmark, scheme):
    apps, data = benchmark.pedantic(_panel, args=(scheme,), rounds=1,
                                    iterations=1)
    table = format_normalized_cpi_table(
        f"Figure 8 ({scheme.upper()}): SPLASH2+PARSEC normalized CPI "
        f"vs Unsafe", apps, list(EXTENSIONS), data)
    write_result(f"fig8_{scheme}.txt", table)
    means = {ext: geomean([data[app][ext] for app in apps])
             for ext in EXTENSIONS}
    assert means["comp"] >= means["lp"] >= means["ep"] * 0.98
    assert means["ep"] >= means["spectre"] * 0.95
    if scheme == "fence":
        # the paper's lu_ncb callout: high miss rate but fast branches, so
        # Spectre is cheap, Comp is terrible, and EP recovers most of it
        lu = data["lu_ncb"]
        assert lu["comp"] > 1.5
        assert lu["ep"] < (lu["comp"] + 1) / 2 + 0.35
